//! The contract-checked pass manager.
//!
//! The paper's architecture is "a stack of many small, composable passes"
//! with per-level dialect guarantees (§2). This module gives that stack a
//! formal seam: every transformation is a [`Pass`] declaring
//!
//! * a **name** (the stage label in traces and benches),
//! * its **input/output [`Level`] contract** — the dialect edge it walks,
//!   matching the edges fed to the [`crate::config::StackBuilder`] checker,
//! * an **`applies` predicate** over [`StackConfig`] — the Table 3
//!   experiment axis decides membership, not hard-coded call sites.
//!
//! The driver ([`crate::stack`]) assembles the pipeline from
//! [`registry`], statically checks it with [`check_pipeline`], runs each
//! pass to fixpoint via [`apply_one`], and — in debug/test builds —
//! mechanically validates the program after *every* pass against the
//! dialect window it is entitled to (see [`dblab_ir::level::validate_window`]).
//!
//! ### The dialect window
//!
//! With the full stack enabled every lowering discharges the vocabulary
//! exclusive to its source level, so after each pass the program conforms
//! to exactly one dialect. Partial stacks (levels 2–4, the compliant
//! config) skip lowerings on purpose; the vocabulary those lowerings would
//! have removed legitimately survives downward and is handled by the
//! generic code generator. The driver therefore tracks a *ceiling* — the
//! most abstract level whose vocabulary has not yet been discharged — and
//! the post-pass contract is: **no node outside `[ceiling, current
//! level]`**. When every lowering runs, ceiling == current level and the
//! check is exact dialect conformance.

use std::time::Instant;

use dblab_catalog::Schema;
use dblab_frontend::qmonad::QMonad;
use dblab_frontend::qplan::QueryProgram;
use dblab_ir::opt::optimize;
use dblab_ir::{Level, Program};

use crate::config::StackConfig;
use crate::stack::StageSnapshot;
use crate::{
    field_removal, fine, fusion, hash_spec, horizontal, layout, list_spec, mem_hoist, pipeline,
    string_dict,
};

/// What a pass *does* to the program (the paper's Table 4 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Front-end AST → top-level IR (pipelining / shortcut fusion, §5.1).
    FrontendLowering,
    /// Level *n* → level *n+1*: discharges the source level's vocabulary.
    Lowering,
    /// Rewrites within one level, applied to fixpoint.
    Optimization,
    /// Pure analysis consulted by another pass; contributes no rewrite of
    /// its own but is registered so the declared stack stays complete.
    Analysis,
    /// A decision recorded for a later consumer (e.g. the storage layout
    /// the C unparser reads), not a rewrite.
    Decision,
}

impl PassKind {
    pub fn label(self) -> &'static str {
        match self {
            PassKind::FrontendLowering => "frontend",
            PassKind::Lowering => "lowering",
            PassKind::Optimization => "optimization",
            PassKind::Analysis => "analysis",
            PassKind::Decision => "decision",
        }
    }
}

/// Everything a pass may consult besides the program itself.
pub struct PassCtx<'a> {
    pub schema: &'a Schema,
    pub cfg: &'a StackConfig,
}

/// One transformation of the DSL stack.
///
/// `Send + Sync` is part of the contract: a pass is stateless (its
/// rewrite is a pure function of program + context — that purity is what
/// licenses the [`crate::memo`] cache), so one registry instance and one
/// [`crate::schedule::Scheduler`] can serve concurrent sweeps.
pub trait Pass: Send + Sync {
    /// Stage label; also the edge name in the declared stack.
    fn name(&self) -> &'static str;

    fn kind(&self) -> PassKind;

    /// The level this pass is *defined at* (its input dialect).
    fn source(&self) -> Level;

    /// The level its output conforms to. Equal to [`Pass::source`] for
    /// optimizations/analyses; one step lower for lowerings.
    fn target(&self) -> Level;

    /// Does the configuration enable this pass? The driver builds the
    /// pipeline from exactly the passes answering `true` — membership is
    /// data-driven, never a call-site `if`.
    fn applies(&self, cfg: &StackConfig) -> bool {
        let _ = cfg;
        true
    }

    /// A floating pass only uses common-core (ScaLite) vocabulary and may
    /// therefore run at whatever level the partial stack has reached, not
    /// just its declared [`Pass::source`] — the expressibility principle
    /// (§2.2) is what makes this sound.
    fn floats(&self) -> bool {
        false
    }

    /// How many fixpoint iterations of the generic optimizer to run after
    /// the rewrite (0 = leave the output as produced).
    fn fixpoint_iters(&self) -> usize {
        4
    }

    /// The configuration bits this pass's *rewrite* reads, folded into the
    /// memo key (see [`crate::memo`]). The default conservatively
    /// fingerprints the whole configuration; a pass that reads nothing (or
    /// a known subset) overrides this so warm compiles at overlapping
    /// configurations share the pipeline prefix instead of missing on
    /// irrelevant flag diffs. Membership (`applies`) is *not* part of the
    /// key — the driver already decides that before the cache is
    /// consulted.
    fn cfg_key(&self, cfg: &StackConfig) -> u64 {
        cfg.fingerprint()
    }

    /// Registry names of passes that must run **before** this one, beyond
    /// what the level structure already implies (see
    /// [`crate::schedule`]). An edge here is a *semantic* claim: this
    /// pass's output depends on whether the named pass has already run, so
    /// the two do not commute. Any pair of passes left unordered by the
    /// resulting DAG is declared commuting — the schedule soundness check
    /// ([`crate::schedule::Scheduler::verify_commutation`]) holds every
    /// such pair to `program_hash`-equality under adjacent swap.
    fn after(&self) -> &'static [&'static str] {
        &[]
    }

    /// Registry names of passes that must run **after** this one (the
    /// mirror of [`Pass::after`], for when the constraint reads more
    /// naturally from the earlier pass's side).
    fn before(&self) -> &'static [&'static str] {
        &[]
    }

    fn run(&self, p: &Program, ctx: &PassCtx) -> Program;
}

/// A front-end lowering: a source AST (not IR) into the top IR level.
pub trait Frontend {
    fn name(&self) -> &'static str;
    fn target(&self) -> Level {
        Level::MapList
    }
    fn lower(&self, ctx: &PassCtx) -> Program;
}

/// Operator pipelining for the QPlan front-end (§5.1).
pub struct PlanLowering<'a>(pub &'a QueryProgram);

impl Frontend for PlanLowering<'_> {
    fn name(&self) -> &'static str {
        "pipelining"
    }
    fn lower(&self, ctx: &PassCtx) -> Program {
        pipeline::lower_program(self.0, ctx.schema, ctx.cfg)
    }
}

/// Shortcut fusion for the QMonad front-end (§4.5/§5.1). Shares the stage
/// name with [`PlanLowering`]: both are the paper's "pipelining" step,
/// reached from different surface syntaxes.
pub struct MonadLowering<'a>(pub &'a QMonad);

impl Frontend for MonadLowering<'_> {
    fn name(&self) -> &'static str {
        "pipelining"
    }
    fn lower(&self, ctx: &PassCtx) -> Program {
        fusion::lower_qmonad(self.0, ctx.schema, ctx.cfg)
    }
}

// ---------------------------------------------------------------------
// The registered passes
// ---------------------------------------------------------------------

/// Automatic index inference (§5.2/App. B.1). The analysis itself runs as
/// a hook inside pipelining (the "informed materialization decision" needs
/// the plan, not the IR), so as a registered pass it is a marker: it
/// declares the edge and shows up in the stage trace when enabled.
struct IndexInference;

impl Pass for IndexInference {
    fn name(&self) -> &'static str {
        "index-inference"
    }
    fn kind(&self) -> PassKind {
        PassKind::Analysis
    }
    fn source(&self) -> Level {
        Level::MapList
    }
    fn target(&self) -> Level {
        Level::MapList
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.index_inference
    }
    fn fixpoint_iters(&self) -> usize {
        0
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // marker pass: the rewrite is the identity
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        p.clone()
    }
}

/// Horizontal fusion of sibling loops (§7.3).
struct HorizontalFusion;

impl Pass for HorizontalFusion {
    fn name(&self) -> &'static str {
        "horizontal-fusion"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::MapList
    }
    fn target(&self) -> Level {
        Level::MapList
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // reads no configuration
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        horizontal::apply(p)
    }
}

/// String dictionaries (§5.3).
struct StringDictionaries;

impl Pass for StringDictionaries {
    fn name(&self) -> &'static str {
        "string-dictionaries"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::MapList
    }
    fn target(&self) -> Level {
        Level::MapList
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.string_dict
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // reads only the schema, which the memo keys separately
    }
    /// Dictionary selection keys on the loop/condition shapes the program
    /// has *before* anything else rewrites them: horizontal fusion merges
    /// the loops its usage analysis walks (measured: 15/22 queries
    /// diverge when swapped).
    fn after(&self) -> &'static [&'static str] {
        &["horizontal-fusion"]
    }
    /// Field removal re-indexes the `StructNew` argument lists this
    /// pass's retyping step anchors on (swapped, it crashes outright);
    /// branch optimization and the terminal sweep restructure the string
    /// comparisons it pattern-matches.
    fn before(&self) -> &'static [&'static str] {
        &["field-removal", "branch-optimization", "final"]
    }
    fn run(&self, p: &Program, ctx: &PassCtx) -> Program {
        string_dict::apply(p, ctx.schema)
    }
}

/// Hash-table specialization: ScaLite\[Map, List\] → ScaLite\[List\]
/// (§5.2, App. B.2).
struct HashTableSpecialization;

impl Pass for HashTableSpecialization {
    fn name(&self) -> &'static str {
        "hash-table-specialization"
    }
    fn kind(&self) -> PassKind {
        PassKind::Lowering
    }
    fn source(&self) -> Level {
        Level::MapList
    }
    fn target(&self) -> Level {
        Level::List
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.hash_spec
    }
    fn cfg_key(&self, cfg: &StackConfig) -> u64 {
        // The rewrite consults init_hoist when deciding whether to hoist
        // bucket-array initialization out of the hot loop.
        cfg.init_hoist as u64
    }
    fn run(&self, p: &Program, ctx: &PassCtx) -> Program {
        hash_spec::apply(p, ctx.cfg)
    }
}

/// List specialization: ScaLite\[List\] → ScaLite (§4.4).
struct ListSpecialization;

impl Pass for ListSpecialization {
    fn name(&self) -> &'static str {
        "list-specialization"
    }
    fn kind(&self) -> PassKind {
        PassKind::Lowering
    }
    fn source(&self) -> Level {
        Level::List
    }
    fn target(&self) -> Level {
        Level::ScaLite
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.list_spec
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // reads no configuration
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        list_spec::apply(p)
    }
}

/// Unused-struct-field removal (App. C). Core-vocabulary rewrites only, so
/// it floats with partial stacks; whether *base-table* columns may be
/// pruned (not TPC-H compliant) is itself config-driven.
struct FieldRemoval;

impl Pass for FieldRemoval {
    fn name(&self) -> &'static str {
        "field-removal"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::ScaLite
    }
    fn target(&self) -> Level {
        Level::ScaLite
    }
    fn floats(&self) -> bool {
        true
    }
    fn cfg_key(&self, cfg: &StackConfig) -> u64 {
        // Whether base-table columns may be pruned changes the output
        // program — the canonical cfg-sensitive pass of the transparency
        // tests.
        cfg.table_field_removal as u64
    }
    /// Run on the *specialized* data structures: hash-table
    /// specialization materializes records whose liveness this pass
    /// decides (measured: up to 6/22 queries diverge when swapped).
    fn after(&self) -> &'static [&'static str] {
        &["hash-table-specialization"]
    }
    /// Memory hoisting sizes pools from the record layouts this pass
    /// prunes — hoist first and the pools are sized for fields that no
    /// longer exist.
    fn before(&self) -> &'static [&'static str] {
        &["memory-hoisting"]
    }
    fn run(&self, p: &Program, ctx: &PassCtx) -> Program {
        field_removal::apply(p, ctx.cfg.table_field_removal)
    }
}

/// Memory-allocation hoisting into pre-sized pools: ScaLite → C.Scala
/// (App. D.1). Rewrites core allocation sites, so it floats: a partial
/// stack hands it whatever level it reached and it still lands at C.Scala.
struct MemoryHoisting;

impl Pass for MemoryHoisting {
    fn name(&self) -> &'static str {
        "memory-hoisting"
    }
    fn kind(&self) -> PassKind {
        PassKind::Lowering
    }
    fn source(&self) -> Level {
        Level::ScaLite
    }
    fn target(&self) -> Level {
        Level::CScala
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.mem_pools
    }
    fn floats(&self) -> bool {
        true
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // pool sizing comes from annotations, not configuration
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        mem_hoist::apply(p)
    }
}

/// `&&` → `&` branch optimization (App. E).
struct BranchOptimization;

impl Pass for BranchOptimization {
    fn name(&self) -> &'static str {
        "branch-optimization"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::CScala
    }
    fn target(&self) -> Level {
        Level::CScala
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.branchless
    }
    fn floats(&self) -> bool {
        true
    }
    fn fixpoint_iters(&self) -> usize {
        0
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // reads no configuration
    }
    /// Hash-table specialization emits fresh `&&` chains in its bucket
    /// probes; run the `&&` → `&` rewrite before it and those are missed
    /// (measured: 9/22 queries diverge when swapped).
    fn after(&self) -> &'static [&'static str] {
        &["hash-table-specialization"]
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        fine::apply(p)
    }
}

/// Storage-layout specialization (App. C): the row/columnar decision the C
/// unparser consults via [`layout::table_layout`]. Registered as a marker
/// so the decision is visible in the stage trace and the declared stack.
struct LayoutDecision;

impl Pass for LayoutDecision {
    fn name(&self) -> &'static str {
        "storage-layout"
    }
    fn kind(&self) -> PassKind {
        PassKind::Decision
    }
    fn source(&self) -> Level {
        Level::CScala
    }
    fn target(&self) -> Level {
        Level::CScala
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        matches!(layout::table_layout(cfg), layout::Layout::Columnar)
    }
    fn floats(&self) -> bool {
        true
    }
    fn fixpoint_iters(&self) -> usize {
        0
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // decision marker: the rewrite is the identity
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        p.clone()
    }
}

/// Morsel-driven scan parallelization (see [`crate::parallelize`]).
/// Selected only when the configuration asks for more than one worker, so
/// serial pipelines are untouched down to the memo keys.
struct ParallelizeScans;

impl Pass for ParallelizeScans {
    fn name(&self) -> &'static str {
        "parallelize-scans"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::CScala
    }
    fn target(&self) -> Level {
        Level::CScala
    }
    fn applies(&self, cfg: &StackConfig) -> bool {
        cfg.threads > 1
    }
    fn floats(&self) -> bool {
        true
    }
    fn cfg_key(&self, cfg: &StackConfig) -> u64 {
        // The worker count is baked into the emitted `ParallelFor` nodes.
        cfg.threads as u64
    }
    /// The scan shapes this pass recognizes are the *outputs* of the whole
    /// optimization stack: privatization keys on the specialized bucket
    /// arrays, hoisted pools, pruned records and flattened `&`-chains, so
    /// every enabled rewrite must have finished before it looks. Each edge
    /// is real — run this pass first and the patterns simply do not exist
    /// yet (the loop stays serial and the output program differs).
    fn after(&self) -> &'static [&'static str] {
        &[
            "horizontal-fusion",
            "string-dictionaries",
            "hash-table-specialization",
            "list-specialization",
            "field-removal",
            "memory-hoisting",
            "branch-optimization",
        ]
    }
    /// The terminal sweep must still run over the merge blocks this pass
    /// synthesizes.
    fn before(&self) -> &'static [&'static str] {
        &["final"]
    }
    fn run(&self, p: &Program, ctx: &PassCtx) -> Program {
        crate::parallelize::apply(p, ctx.cfg.threads)
    }
}

/// Terminal generic-optimizer sweep at whatever level the stack reached.
struct FinalCleanup;

impl Pass for FinalCleanup {
    fn name(&self) -> &'static str {
        "final"
    }
    fn kind(&self) -> PassKind {
        PassKind::Optimization
    }
    fn source(&self) -> Level {
        Level::CScala
    }
    fn target(&self) -> Level {
        Level::CScala
    }
    fn floats(&self) -> bool {
        true
    }
    fn cfg_key(&self, _cfg: &StackConfig) -> u64 {
        0 // only the generic optimizer runs, which reads no configuration
    }
    fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
        p.clone()
    }
}

/// The full pass registry, in stack order (top of the DSL stack first).
/// Which of these actually run for a given build is decided exclusively by
/// each pass's [`Pass::applies`] against the [`StackConfig`].
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(IndexInference),
        Box::new(HorizontalFusion),
        Box::new(StringDictionaries),
        Box::new(HashTableSpecialization),
        Box::new(ListSpecialization),
        Box::new(FieldRemoval),
        Box::new(MemoryHoisting),
        Box::new(BranchOptimization),
        Box::new(LayoutDecision),
        Box::new(ParallelizeScans),
        Box::new(FinalCleanup),
    ]
}

/// Every edge the registry declares, for the formal stack checker
/// ([`crate::config::dblab_stack`] feeds these to the §2.3 principles).
pub fn declared_edges() -> Vec<(&'static str, Level, Level)> {
    registry()
        .iter()
        .map(|p| (p.name(), p.source(), p.target()))
        .collect()
}

/// Statically check the pipeline a configuration selects: every pass must
/// find the program at a level it accepts, given the lowerings enabled
/// before it. Returns the selected passes in execution order.
pub fn check_pipeline<'r>(
    passes: &'r [Box<dyn Pass>],
    cfg: &StackConfig,
) -> Result<Vec<&'r dyn Pass>, String> {
    let mut level = Level::MapList;
    let mut selected = Vec::new();
    for p in passes.iter().filter(|p| p.applies(cfg)) {
        if p.target() < p.source() {
            return Err(format!(
                "pass {} is declared upward ({} -> {}), violating expressibility",
                p.name(),
                p.source(),
                p.target()
            ));
        }
        if !p.floats() && p.source() != level {
            return Err(format!(
                "pass {} expects {} input but config `{}` hands it {} — \
                 enable the lowerings in between or mark the pass floating",
                p.name(),
                p.source(),
                cfg.name,
                level
            ));
        }
        // Mirror the runtime contract in apply_one: only a lowering moves
        // the program level; a floating optimization's declared target says
        // where it is *defined*, not where the program ends up.
        if p.kind() == PassKind::Lowering {
            level = level.max(p.target());
        }
        selected.push(p.as_ref());
    }
    Ok(selected)
}

/// How far the dialect ceiling drops after `pass` runs: a lowering whose
/// source *is* the ceiling discharges that level's exclusive vocabulary.
pub fn advance_ceiling(ceiling: Level, pass: &dyn Pass) -> Level {
    if pass.kind() == PassKind::Lowering && pass.source() == ceiling {
        ceiling.lower().unwrap_or(ceiling)
    } else {
        ceiling
    }
}

/// Run one pass: rewrite, re-optimize to fixpoint, check the level
/// contract, and (when `validate` is set — debug/test builds) mechanically
/// verify the output against the dialect window `[ceiling, level]`.
///
/// The rewrite + fixpoint step is memoized through [`crate::memo`], keyed
/// on the pass name, the input program's structural hash and the
/// pass-relevant configuration/schema fingerprint ([`Pass::cfg_key`]).
/// Only the *rewrite* is skipped on a hit — the level contract and (in
/// validating builds) the dialect-window check still run against the
/// cached output, so memoization can never launder a contract violation.
pub fn apply_one(
    pass: &dyn Pass,
    p: &Program,
    ctx: &PassCtx,
    ceiling: Level,
    validate: bool,
) -> Result<(Program, StageSnapshot), String> {
    let t0 = Instant::now();
    let level_before = p.level;
    let size_before = p.body.size();
    let key = crate::memo::PassKey {
        pass: pass.name(),
        program: dblab_ir::hash::program_hash(p),
        inputs: pass.cfg_key(ctx.cfg) ^ crate::memo::schema_fingerprint(ctx.schema).rotate_left(1),
    };
    let (q, cached) = match crate::memo::lookup(&key) {
        Some(q) => (q, true),
        None => {
            let mut q = pass.run(p, ctx);
            if pass.fixpoint_iters() > 0 {
                q = optimize(&q, pass.fixpoint_iters());
            }
            (q, false)
        }
    };
    // Only a lowering moves the level; everything else preserves the level
    // the (possibly partial) stack has reached.
    let expected = if pass.kind() == PassKind::Lowering {
        level_before.max(pass.target())
    } else {
        level_before
    };
    if q.level != expected {
        return Err(format!(
            "pass {} declared target {} but produced a {} program (input was {})",
            pass.name(),
            pass.target(),
            q.level,
            level_before
        ));
    }
    if validate {
        // Schedule-order-stable window: depends only on which lowerings
        // have run (the ceiling), never on where this pass sits.
        let violations = dblab_ir::level::validate_stage(&q, ceiling);
        if !violations.is_empty() {
            return Err(format!(
                "pass {} violated its output dialect [{}, {}]: {} violation(s), first: {}",
                pass.name(),
                ceiling.min(q.level),
                q.level,
                violations.len(),
                violations[0]
            ));
        }
    }
    if !cached {
        crate::memo::insert(key, q.clone());
    }
    let snap = StageSnapshot {
        name: pass.name().to_string(),
        kind: pass.kind(),
        level_before,
        level: q.level,
        size_before,
        size: q.body.size(),
        time: t0.elapsed(),
        cached,
    };
    Ok((q, snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::expr::{Annotations, Atom, Block, Expr, Stmt, Sym};
    use dblab_ir::types::{StructRegistry, Type};

    fn maplist_prog() -> Program {
        Program {
            structs: StructRegistry::new(),
            body: Block::unit(vec![Stmt {
                sym: Sym(0),
                ty: Type::Int,
                expr: Expr::Bin(dblab_ir::BinOp::Add, Atom::Int(1), Atom::Int(2)),
            }]),
            sym_types: vec![Type::Int],
            level: Level::MapList,
            annots: Annotations::default(),
        }
    }

    /// A pass that claims to stay at ScaLite[Map, List] but injects
    /// C.Scala vocabulary — the post-pass check must reject it.
    struct LevelViolatingPass;

    impl Pass for LevelViolatingPass {
        fn name(&self) -> &'static str {
            "rogue"
        }
        fn kind(&self) -> PassKind {
            PassKind::Optimization
        }
        fn source(&self) -> Level {
            Level::MapList
        }
        fn target(&self) -> Level {
            Level::MapList
        }
        fn fixpoint_iters(&self) -> usize {
            0
        }
        fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
            let mut q = p.clone();
            let sym = Sym(q.sym_types.len() as u32);
            q.sym_types.push(Type::pointer(Type::Int));
            q.body.stmts.push(Stmt {
                sym,
                ty: Type::pointer(Type::Int),
                expr: Expr::Malloc {
                    ty: Type::Int,
                    count: Atom::Int(8),
                },
            });
            q
        }
    }

    /// A pass that silently changes the program's level without declaring
    /// a lowering — the level contract must reject it.
    struct LevelLyingPass;

    impl Pass for LevelLyingPass {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn kind(&self) -> PassKind {
            PassKind::Optimization
        }
        fn source(&self) -> Level {
            Level::MapList
        }
        fn target(&self) -> Level {
            Level::MapList
        }
        fn fixpoint_iters(&self) -> usize {
            0
        }
        fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
            let mut q = p.clone();
            q.level = Level::CScala;
            q
        }
    }

    fn ctx_fixture() -> (Schema, StackConfig) {
        (Schema::new(vec![]), StackConfig::level5())
    }

    #[test]
    fn dialect_violating_pass_is_caught() {
        let (schema, cfg) = ctx_fixture();
        let ctx = PassCtx {
            schema: &schema,
            cfg: &cfg,
        };
        let err = apply_one(
            &LevelViolatingPass,
            &maplist_prog(),
            &ctx,
            Level::MapList,
            true,
        )
        .unwrap_err();
        assert!(err.contains("violated its output dialect"), "{err}");
        // Without validation the rogue pass sails through — the check is
        // what catches it, not the rewrite machinery.
        assert!(apply_one(
            &LevelViolatingPass,
            &maplist_prog(),
            &ctx,
            Level::MapList,
            false
        )
        .is_ok());
    }

    #[test]
    fn undeclared_level_change_is_caught() {
        let (schema, cfg) = ctx_fixture();
        let ctx = PassCtx {
            schema: &schema,
            cfg: &cfg,
        };
        let err =
            apply_one(&LevelLyingPass, &maplist_prog(), &ctx, Level::MapList, true).unwrap_err();
        assert!(err.contains("declared target"), "{err}");
    }

    #[test]
    fn registry_selection_is_config_driven() {
        let passes = registry();
        let names = |cfg: &StackConfig| -> Vec<&'static str> {
            check_pipeline(&passes, cfg)
                .expect("valid pipeline")
                .iter()
                .map(|p| p.name())
                .collect()
        };
        let l2 = names(&StackConfig::level2());
        assert_eq!(l2, vec!["horizontal-fusion", "field-removal", "final"]);
        let l5 = names(&StackConfig::level5());
        assert!(l5.contains(&"hash-table-specialization"));
        assert!(l5.contains(&"list-specialization"));
        assert!(l5.contains(&"index-inference"));
        // Order is registry order regardless of config.
        let pos = |n: &str| l5.iter().position(|x| *x == n).unwrap();
        assert!(pos("hash-table-specialization") < pos("list-specialization"));
        assert!(pos("list-specialization") < pos("memory-hoisting"));
    }

    #[test]
    fn non_floating_pass_at_wrong_level_is_a_config_error() {
        // list specialization without hash-table specialization: the
        // program would still be at ScaLite[Map, List].
        let cfg = StackConfig {
            list_spec: true,
            ..StackConfig::level2()
        };
        let passes = registry();
        let err = check_pipeline(&passes, &cfg).err().expect("rejected");
        assert!(err.contains("list-specialization"), "{err}");
    }

    #[test]
    fn floating_passes_do_not_fake_level_progress() {
        // A floating pass's declared target says where it is defined, not
        // where the program ends up: after field-removal (floating, declared
        // at ScaLite) a level-2 program is still at ScaLite[Map, List], so a
        // non-floating ScaLite pass behind it must be rejected.
        struct NeedsScaLite;
        impl Pass for NeedsScaLite {
            fn name(&self) -> &'static str {
                "needs-scalite"
            }
            fn kind(&self) -> PassKind {
                PassKind::Optimization
            }
            fn source(&self) -> Level {
                Level::ScaLite
            }
            fn target(&self) -> Level {
                Level::ScaLite
            }
            fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
                p.clone()
            }
        }
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(FieldRemoval), Box::new(NeedsScaLite)];
        let err = check_pipeline(&passes, &StackConfig::level2())
            .err()
            .expect("rejected");
        assert!(err.contains("needs-scalite"), "{err}");
        // With the real lowerings enabled the same pass is placed validly.
        let passes: Vec<Box<dyn Pass>> = vec![
            Box::new(HashTableSpecialization),
            Box::new(ListSpecialization),
            Box::new(NeedsScaLite),
        ];
        assert!(check_pipeline(&passes, &StackConfig::level5()).is_ok());
    }

    #[test]
    fn ceiling_tracks_discharged_vocabulary() {
        let passes = registry();
        let cfg = StackConfig::level4(); // list_spec disabled
        let mut ceiling = Level::MapList;
        for p in check_pipeline(&passes, &cfg).unwrap() {
            ceiling = advance_ceiling(ceiling, p);
        }
        // Hash tables were discharged, lists were not.
        assert_eq!(ceiling, Level::List);
        let mut ceiling = Level::MapList;
        for p in check_pipeline(&passes, &StackConfig::level5()).unwrap() {
            ceiling = advance_ceiling(ceiling, p);
        }
        assert_eq!(ceiling, Level::CScala);
    }
}
