//! String dictionaries (§5.3).
//!
//! Per eligible string attribute, the loader builds a dictionary mapping
//! each value to an integer code; string operations then lower to integer
//! operations per the paper's Table 2:
//!
//! | operation | C code | integer form | dictionary |
//! |-----------|--------|--------------|------------|
//! | equals | `strcmp(x,y)==0` | `x == y` | normal |
//! | notEquals | `strcmp(x,y)!=0` | `x != y` | normal |
//! | startsWith | `strncmp(x,y,strlen(y))==0` | `x>=start && x<=end` | ordered |
//! | three-way compare (sorting) | `strcmp(x,y)` | `x - y` | ordered |
//!
//! Eligibility follows the paper's caveats: an attribute qualifies only if
//! *every* string operation over it is mappable (a single `LIKE`/`contains`
//! disqualifies it), it is not a key, and its distinct count is modest
//! ("string dictionaries can actually degrade performance when used for
//! primary keys or attributes with many distinct values"). The analysis
//! finds attribute uses through the provenance annotations (§3.3) that
//! pipelining attaches to every verbatim column copy, so predicates keep
//! qualifying even after records cross hash tables.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dblab_catalog::Schema;
use dblab_ir::expr::{Annot, Atom, Block, DictOp, Expr, PrimOp, Sym};
use dblab_ir::rewrite::{run_rule, Rewriter, Rule};
use dblab_ir::{IrBuilder, Program, Type};

/// Attributes with more distinct values than this keep their strings.
const MAX_DISTINCT: u64 = 50_000;

type ColId = (Arc<str>, usize);

#[derive(Default)]
struct Usage {
    eq_consts: HashSet<Arc<str>>,
    prefix_consts: HashSet<Arc<str>>,
    cmp_use: bool,
    disqualified: bool,
}

struct StringDict<'s> {
    schema: &'s Schema,
    usage: HashMap<ColId, Usage>,
    /// Eligible columns with their `ordered` flag.
    chosen: HashMap<ColId, bool>,
    /// Hoisted constant codes: (column, const, op) -> atom.
    consts: HashMap<(ColId, Arc<str>, DictOp), Atom>,
    /// Hash tables keyed directly by a dictionary-encoded column: their
    /// `String` key type must become `Int`.
    retype_maps: HashSet<Sym>,
}

/// Apply the transformation. Returns the rewritten program (identity when
/// nothing qualifies).
pub fn apply(p: &Program, schema: &Schema) -> Program {
    let mut rule = StringDict {
        schema,
        usage: HashMap::new(),
        chosen: HashMap::new(),
        consts: HashMap::new(),
        retype_maps: HashSet::new(),
    };
    analyze(&p.body, p, &mut rule);
    rule.choose();
    if rule.chosen.is_empty() {
        return p.clone();
    }
    run_rule(p, &mut rule, p.level)
}

/// Which dictionary-eligible column (if any) does this atom carry?
fn col_of(p: &Program, a: &Atom) -> Option<ColId> {
    match a {
        Atom::Sym(s) => p.annots.column(*s),
        _ => None,
    }
}

fn analyze(b: &Block, p: &Program, rule: &mut StringDict<'_>) {
    for st in &b.stmts {
        // Classify string-op contexts.
        match &st.expr {
            Expr::Prim(op, args) => match op {
                PrimOp::StrEq | PrimOp::StrNe => {
                    classify_eq(p, rule, &args[0], &args[1]);
                }
                PrimOp::StrStartsWith => {
                    if let (Some(c), Atom::Str(k)) = (col_of(p, &args[0]), &args[1]) {
                        rule.usage
                            .entry(c)
                            .or_default()
                            .prefix_consts
                            .insert(k.clone());
                    } else {
                        disqualify_all(p, rule, args);
                    }
                }
                PrimOp::StrCmp => {
                    let (ca, cb) = (col_of(p, &args[0]), col_of(p, &args[1]));
                    match (ca, cb) {
                        (Some(x), Some(y)) if x == y => {
                            rule.usage.entry(x).or_default().cmp_use = true;
                        }
                        _ => disqualify_all(p, rule, args),
                    }
                }
                PrimOp::StrEndsWith
                | PrimOp::StrContains
                | PrimOp::StrLike
                | PrimOp::StrSubstr
                | PrimOp::StrLen
                | PrimOp::HashStr => disqualify_all(p, rule, args),
                _ => {}
            },
            // Benign contexts for string-typed values: being stored,
            // keyed, compared for grouping, printed.
            Expr::Printf { .. }
            | Expr::StructNew { .. }
            | Expr::FieldSet { .. }
            | Expr::FieldGet { .. }
            | Expr::Atom(_)
            | Expr::HashMapGetOrInit { .. }
            | Expr::MultiMapAdd { .. }
            | Expr::MultiMapForeachAt { .. }
            | Expr::ArraySet { .. }
            | Expr::ListAppend { .. }
            | Expr::Assign { .. }
            | Expr::DeclVar { .. } => {}
            // Any other expression consuming a provenance-tracked string is
            // out of scope: disqualify.
            other => {
                other.for_each_atom(|a| {
                    if let Some(c) = col_of(p, a) {
                        if is_string_col(&c, rule.schema) {
                            rule.usage.entry(c).or_default().disqualified = true;
                        }
                    }
                });
            }
        }
        for blk in st.expr.blocks() {
            analyze(blk, p, rule);
        }
    }
}

fn classify_eq(p: &Program, rule: &mut StringDict<'_>, a: &Atom, b: &Atom) {
    match (col_of(p, a), b, col_of(p, b), a) {
        (Some(c), Atom::Str(k), _, _) | (_, _, Some(c), Atom::Str(k)) => {
            rule.usage.entry(c).or_default().eq_consts.insert(k.clone());
        }
        _ => disqualify_all(p, rule, &[a.clone(), b.clone()]),
    }
}

fn disqualify_all(p: &Program, rule: &mut StringDict<'_>, atoms: &[Atom]) {
    for a in atoms {
        if let Some(c) = col_of(p, a) {
            rule.usage.entry(c).or_default().disqualified = true;
        }
    }
}

fn is_string_col(c: &ColId, schema: &Schema) -> bool {
    schema.has_table(&c.0)
        && schema
            .table(&c.0)
            .columns
            .get(c.1)
            .map(|col| col.ty.is_string())
            == Some(true)
}

fn dict_name(c: &ColId) -> Arc<str> {
    format!("{}__{}", c.0, c.1).into()
}

impl StringDict<'_> {
    fn choose(&mut self) {
        for (col, u) in &self.usage {
            if u.disqualified || !is_string_col(col, self.schema) {
                continue;
            }
            if u.eq_consts.is_empty() && u.prefix_consts.is_empty() && !u.cmp_use {
                continue;
            }
            let def = self.schema.table(&col.0);
            let distinct = def.stats.distinct.get(col.1).copied().unwrap_or(0);
            if distinct == 0 || distinct > MAX_DISTINCT {
                continue;
            }
            if def.primary_key.contains(&col.1) {
                continue;
            }
            let ordered = !u.prefix_consts.is_empty() || u.cmp_use;
            self.chosen.insert(col.clone(), ordered);
        }
    }

    fn dict_of(&self, p: &Program, a: &Atom) -> Option<ColId> {
        let c = col_of(p, a)?;
        self.chosen.contains_key(&c).then_some(c)
    }

    /// The hoisted code of a query constant (emitted at TimerStart).
    fn const_code(&mut self, _b: &mut IrBuilder, col: &ColId, k: &Arc<str>, op: DictOp) -> Atom {
        self.consts
            .get(&(col.clone(), k.clone(), op))
            .unwrap_or_else(|| panic!("dictionary constant {k} of {col:?} was not hoisted"))
            .clone()
    }
}

impl Rule for StringDict<'_> {
    fn name(&self) -> &'static str {
        "string-dictionaries"
    }

    fn prepare(&mut self, p: &Program, b: &mut IrBuilder) {
        // Hash tables keyed by a dictionary-encoded value switch to
        // integer keys.
        fn scan_keys(
            blk: &Block,
            p: &Program,
            chosen: &HashMap<ColId, bool>,
            out: &mut HashSet<Sym>,
        ) {
            for st in &blk.stmts {
                let key = match &st.expr {
                    Expr::HashMapGetOrInit { map, key, .. }
                    | Expr::MultiMapAdd { map, key, .. }
                    | Expr::MultiMapForeachAt { map, key, .. } => Some((map.as_sym(), key)),
                    _ => None,
                };
                if let Some((Some(ms), key)) = key {
                    if let Some(c) = col_of(p, key) {
                        if chosen.contains_key(&c) {
                            out.insert(ms);
                        }
                    }
                }
                for sub in st.expr.blocks() {
                    scan_keys(sub, p, chosen, out);
                }
            }
        }
        let mut retype = HashSet::new();
        scan_keys(&p.body, p, &self.chosen, &mut retype);
        self.retype_maps = retype;

        // Retype every record field that verbatim-holds a chosen column.
        // Base-table structs are found via LoadTable; intermediate structs
        // via the provenance of their constructor arguments.
        let mut retype: Vec<(dblab_ir::StructId, usize)> = Vec::new();
        fn walk(
            blk: &Block,
            p: &Program,
            chosen: &HashMap<ColId, bool>,
            out: &mut Vec<(dblab_ir::StructId, usize)>,
        ) {
            for st in &blk.stmts {
                match &st.expr {
                    Expr::LoadTable { sid, table } => {
                        for (c, _) in chosen.iter().filter(|((t, _), _)| t == table) {
                            out.push((*sid, c.1));
                        }
                    }
                    Expr::StructNew { sid, args } => {
                        for (i, a) in args.iter().enumerate() {
                            if let Atom::Sym(s) = a {
                                if let Some(c) = p.annots.column(*s) {
                                    if chosen.contains_key(&c) {
                                        out.push((*sid, i));
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
                for sub in st.expr.blocks() {
                    walk(sub, p, chosen, out);
                }
            }
        }
        walk(&p.body, p, &self.chosen, &mut retype);
        for (sid, field) in retype {
            let def = b.structs.get_mut(sid);
            if def.fields[field].ty == Type::String {
                def.fields[field].ty = Type::Int;
            }
        }
    }

    fn apply(&mut self, rw: &mut Rewriter<'_>, _sym: Sym, _ty: &Type, e: &Expr) -> Option<Atom> {
        match e {
            // Hoist every query constant's dictionary lookup to the start
            // of the query phase (loop-invariant by construction; emitting
            // them lazily would scope them inside the loop that first
            // needed them).
            Expr::Prim(PrimOp::TimerStart, _) => {
                rw.b.prim(PrimOp::TimerStart, vec![]);
                let mut work: Vec<(ColId, Arc<str>, DictOp)> = Vec::new();
                for (col, u) in &self.usage {
                    if !self.chosen.contains_key(col) {
                        continue;
                    }
                    for k in &u.eq_consts {
                        work.push((col.clone(), k.clone(), DictOp::Lookup));
                    }
                    for k in &u.prefix_consts {
                        work.push((col.clone(), k.clone(), DictOp::RangeStart));
                        work.push((col.clone(), k.clone(), DictOp::RangeEnd));
                    }
                }
                work.sort_by_key(|a| (a.0.clone(), a.1.clone()));
                for (col, k, op) in work {
                    let a = rw.b.dict(dict_name(&col), op, Atom::Str(k.clone()));
                    self.consts.insert((col, k, op), a);
                }
                Some(Atom::Unit)
            }
            Expr::HashMapNew { key, value } if self.retype_maps.contains(&_sym) => {
                debug_assert_eq!(*key, Type::String);
                Some(rw.b.hashmap_new(Type::Int, value.clone()))
            }
            Expr::MultiMapNew { key, value } if self.retype_maps.contains(&_sym) => {
                debug_assert_eq!(*key, Type::String);
                Some(rw.b.multimap_new(Type::Int, value.clone()))
            }
            Expr::LoadTable { table, .. } => {
                let atom = rw.reconstruct(
                    self,
                    &dblab_ir::expr::Stmt {
                        sym: _sym,
                        ty: _ty.clone(),
                        expr: e.clone(),
                    },
                );
                if let Atom::Sym(s) = atom {
                    for (col, ordered) in self.chosen.iter().filter(|((t, _), _)| t == table) {
                        rw.b.annotate(
                            s,
                            Annot::DictField {
                                field: col.1,
                                ordered: *ordered,
                            },
                        );
                    }
                }
                Some(atom)
            }
            Expr::Prim(op @ (PrimOp::StrEq | PrimOp::StrNe), args) => {
                let (col, cst) = match (self.dict_of(rw.old, &args[0]), &args[1]) {
                    (Some(c), Atom::Str(k)) => (c, k.clone()),
                    _ => match (self.dict_of(rw.old, &args[1]), &args[0]) {
                        (Some(c), Atom::Str(k)) => (c, k.clone()),
                        _ => return None,
                    },
                };
                let code = self.const_code(&mut rw.b, &col, &cst, DictOp::Lookup);
                let x = rw.atom(if matches!(&args[0], Atom::Str(_)) {
                    &args[1]
                } else {
                    &args[0]
                });
                Some(match op {
                    PrimOp::StrEq => rw.b.eq(x, code),
                    _ => rw.b.ne(x, code),
                })
            }
            Expr::Prim(PrimOp::StrStartsWith, args) => {
                let col = self.dict_of(rw.old, &args[0])?;
                let Atom::Str(k) = &args[1] else { return None };
                let start = self.const_code(&mut rw.b, &col, k, DictOp::RangeStart);
                let end = self.const_code(&mut rw.b, &col, k, DictOp::RangeEnd);
                let x = rw.atom(&args[0]);
                let ge = rw.b.ge(x.clone(), start);
                let le = rw.b.le(x, end);
                Some(rw.b.and(ge, le))
            }
            Expr::Prim(PrimOp::StrCmp, args) => {
                let ca = self.dict_of(rw.old, &args[0])?;
                let cb = self.dict_of(rw.old, &args[1])?;
                if ca != cb {
                    return None;
                }
                let (x, y) = (rw.atom(&args[0]), rw.atom(&args[1]));
                Some(rw.b.sub(x, y))
            }
            Expr::Printf { fmt, args } => {
                let mut new_args = Vec::with_capacity(args.len());
                let mut changed = false;
                for a in args {
                    if let Some(col) = self.dict_of(rw.old, a) {
                        let x = rw.atom(a);
                        new_args.push(rw.b.dict(dict_name(&col), DictOp::Decode, x));
                        changed = true;
                    } else {
                        new_args.push(rw.atom(a));
                    }
                }
                if !changed {
                    return None;
                }
                rw.b.emit_unit(Expr::Printf {
                    fmt: fmt.clone(),
                    args: new_args,
                });
                Some(Atom::Unit)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_catalog::{ColType, TableDef};
    use dblab_ir::{FieldDef, Level, StructDef};

    fn schema() -> Schema {
        let mut t = TableDef::new("t", vec![("t_k", ColType::Int), ("t_s", ColType::String)])
            .with_primary_key(&["t_k"]);
        t.stats.row_count = 100;
        t.stats.int_max = vec![100, 0];
        t.stats.distinct = vec![100, 20];
        Schema::new(vec![t])
    }

    fn program(op: PrimOp, konst: &str) -> Program {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "t".into(),
            fields: vec![
                FieldDef {
                    name: "t_k".into(),
                    ty: Type::Int,
                },
                FieldDef {
                    name: "t_s".into(),
                    ty: Type::String,
                },
            ],
        });
        let arr = b.load_table("t", sid);
        b.prim(PrimOp::TimerStart, vec![]);
        let len = b.array_len(arr.clone());
        b.for_range(Atom::Int(0), len, |bb, i| {
            let rec = bb.array_get(arr.clone(), i);
            let s = bb.field_get(rec, sid, 1);
            if let Atom::Sym(sy) = s {
                bb.annotate(
                    sy,
                    Annot::Column {
                        table: "t".into(),
                        field: 1,
                    },
                );
            }
            let p = bb.prim(op, vec![s.clone(), Atom::Str(konst.into())]);
            bb.if_then(p, |bb| bb.printf("%s\n", vec![s]));
        });
        b.finish(Atom::Unit, Level::MapList)
    }

    fn text(p: &Program) -> String {
        dblab_ir::printer::print_program(p)
    }

    #[test]
    fn equality_maps_to_integer_equality() {
        let p = program(PrimOp::StrEq, "hello");
        let q = apply(&p, &schema());
        let t = text(&q);
        assert!(t.contains("lookup"), "{t}");
        assert!(!t.contains("strEq"), "{t}");
        assert!(t.contains("decode"), "printing decodes: {t}");
        // The base struct field is now an int.
        let sid = q.structs.lookup("t").unwrap();
        assert_eq!(q.structs.get(sid).fields[1].ty, Type::Int);
    }

    #[test]
    fn starts_with_maps_to_range_check() {
        let p = program(PrimOp::StrStartsWith, "he");
        let q = apply(&p, &schema());
        let t = text(&q);
        assert!(t.contains("rangeStart"), "{t}");
        assert!(t.contains("rangeEnd"), "{t}");
        assert!(!t.contains("startsWith"), "{t}");
    }

    #[test]
    fn contains_disqualifies_the_attribute() {
        let p = program(PrimOp::StrContains, "he");
        let q = apply(&p, &schema());
        let t = text(&q);
        assert!(t.contains("contains"), "{t}");
        assert!(!t.contains("lookup"), "{t}");
    }

    #[test]
    fn high_cardinality_attributes_keep_strings() {
        let mut s = schema();
        s.table_mut("t").stats.distinct[1] = 1_000_000;
        let p = program(PrimOp::StrEq, "hello");
        let q = apply(&p, &s);
        assert!(text(&q).contains("strEq"));
    }
}
