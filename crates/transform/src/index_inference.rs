//! Automatic index inference and data-structure partitioning (§5.2,
//! Appendix B.1, Figure 7).
//!
//! When a hash join builds its table by scanning an *input relation*
//! (possibly through a pure filter) keyed on one of that relation's own
//! integer columns, the intermediate MultiMap can be elided: at data-loading
//! time the relation is partitioned by that column (a CSR index of row
//! positions, or a direct row-position array when the column is the primary
//! key — Figures 7c/7d), and the probe reads the partition directly, with
//! the build-side filter re-applied inside the probe loop ("the iteration
//! over the first relation is moved to the next step").
//!
//! The analysis here answers *whether* a build side qualifies; the
//! pipelining lowering consults it to make the paper's "informed
//! materialization decision" (§4.3) and to push the index construction into
//! the pre-processing phase.

use std::sync::Arc;

use dblab_catalog::{ColType, Schema};
use dblab_frontend::expr::ScalarExpr;
use dblab_frontend::qplan::QPlan;

/// Result of a successful analysis.
#[derive(Debug, Clone)]
pub struct IndexableBuild<'p> {
    /// The input relation being materialized.
    pub table: Arc<str>,
    /// Scan alias (affects the column names the re-applied filter sees).
    pub alias: Option<Arc<str>>,
    /// Filters to re-apply inside the probe (innermost first).
    pub filters: Vec<&'p ScalarExpr>,
    /// The key column position in the base table.
    pub key_col: usize,
    /// Key values are unique (single-column primary key) — Figure 7d.
    pub unique: bool,
    /// Upper bound of the key's value range (sizes the index arrays; the
    /// paper makes "an aggressive system memory trade-off" here, App. B.1).
    pub key_max: u64,
}

/// Maximum key range we are willing to trade memory for.
const MAX_KEY_RANGE: u64 = 1 << 26;

/// Does `plan`, used as a hash-join build side keyed by `key`, qualify for
/// index inference?
pub fn analyze<'p>(
    plan: &'p QPlan,
    key: &ScalarExpr,
    schema: &Schema,
) -> Option<IndexableBuild<'p>> {
    // Peel Select layers off a base-table scan.
    let mut filters = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            QPlan::Select { child, pred } => {
                filters.push(pred);
                cur = child;
            }
            QPlan::Scan { table, alias } => {
                filters.reverse();
                let key_name = match key {
                    ScalarExpr::Col(n) => n,
                    _ => return None,
                };
                let def = schema.table(table);
                // Undo alias prefixing to find the base column.
                let base_name: &str = match alias {
                    Some(a) => key_name.strip_prefix(&format!("{a}_")).unwrap_or(key_name),
                    None => key_name,
                };
                let col = def.columns.iter().position(|c| &*c.name == base_name)?;
                if !matches!(def.columns[col].ty, ColType::Int) {
                    return None;
                }
                let key_max = *def.stats.int_max.get(col)?;
                if key_max == 0 || key_max > MAX_KEY_RANGE {
                    return None;
                }
                let unique = def.is_primary_key(col);
                // Non-unique columns must reference *something* keyed —
                // a foreign key or the leading column of a composite
                // primary key (partitioning, App. B.1).
                if !unique
                    && def.foreign_key_target(col).is_none()
                    && def.primary_key.first() != Some(&col)
                {
                    return None;
                }
                return Some(IndexableBuild {
                    table: table.clone(),
                    alias: alias.clone(),
                    filters,
                    key_col: col,
                    unique,
                    key_max,
                });
            }
            // Anything else is an intermediate relation; the paper requires
            // an input relation ("First, we make sure R is not an
            // intermediate relation", §5.2).
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;
    use dblab_tpch::tpch_schema;

    fn schema_with_stats() -> Schema {
        let mut s = tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 1000;
            t.stats.int_max = vec![1000; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    }

    #[test]
    fn base_scan_on_primary_key_is_unique_index() {
        let s = schema_with_stats();
        let plan = QPlan::scan("customer");
        let r = analyze(&plan, &col("c_custkey"), &s).expect("qualifies");
        assert!(r.unique);
        assert_eq!(r.key_col, 0);
        assert!(r.filters.is_empty());
    }

    #[test]
    fn filtered_scan_on_foreign_key_is_partition_index() {
        let s = schema_with_stats();
        let plan = QPlan::scan("lineitem").select(col("l_commitdate").lt(col("l_receiptdate")));
        let r = analyze(&plan, &col("l_orderkey"), &s).expect("qualifies");
        assert!(!r.unique, "l_orderkey is not unique in lineitem");
        assert_eq!(r.filters.len(), 1);
    }

    #[test]
    fn intermediate_relations_do_not_qualify() {
        let s = schema_with_stats();
        let joined = QPlan::scan("customer").hash_join(
            QPlan::scan("orders"),
            dblab_frontend::qplan::JoinKind::Inner,
            vec![col("c_custkey")],
            vec![col("o_custkey")],
        );
        assert!(analyze(&joined, &col("c_custkey"), &s).is_none());
    }

    #[test]
    fn string_or_computed_keys_do_not_qualify() {
        let s = schema_with_stats();
        let plan = QPlan::scan("customer");
        assert!(analyze(&plan, &col("c_name"), &s).is_none());
        assert!(analyze(&plan, &col("c_custkey").add(lit_i(1)), &s).is_none());
    }

    #[test]
    fn aliased_scan_resolves_prefixed_key() {
        let s = schema_with_stats();
        let plan = QPlan::scan_as("lineitem", "l2");
        let r = analyze(&plan, &col("l2_l_orderkey"), &s).expect("qualifies");
        assert_eq!(r.key_col, 0);
    }

    #[test]
    fn huge_key_ranges_are_rejected() {
        let mut s = schema_with_stats();
        s.table_mut("customer").stats.int_max[0] = u64::MAX;
        assert!(analyze(&QPlan::scan("customer"), &col("c_custkey"), &s).is_none());
    }
}
