//! Memory-allocation hoisting: the lowering from ScaLite to C.Scala
//! (Appendix D.1).
//!
//! Record construction (`StructNew`) becomes explicit memory management:
//! one memory pool per record type, created up front and sized from the
//! worst-case cardinality annotations gathered during pipelining, so that
//! no `malloc` remains on the critical path. Records without a usable
//! estimate fall back to a default-capacity pool that doubles on overflow
//! (the fallback policy App. D.1 discusses).

use std::collections::HashMap;

use dblab_ir::expr::{Atom, Block, Expr, Sym};
use dblab_ir::rewrite::{run_rule, Rewriter, Rule};
use dblab_ir::types::StructId;
use dblab_ir::{IrBuilder, Level, Program, Type};

#[derive(Default)]
struct MemHoist {
    pools: HashMap<StructId, Atom>,
    hints: HashMap<StructId, u64>,
}

/// Hoist all record allocations into pre-sized pools; the result is a
/// C.Scala program.
pub fn apply(p: &Program) -> Program {
    let mut rule = MemHoist::default();
    collect_hints(&p.body, p, &mut rule.hints);
    run_rule(p, &mut rule, Level::CScala)
}

fn collect_hints(b: &Block, p: &Program, hints: &mut HashMap<StructId, u64>) {
    for st in &b.stmts {
        if let Expr::StructNew { sid, .. } = &st.expr {
            let h = p.annots.size_hint(st.sym).unwrap_or(1024);
            let e = hints.entry(*sid).or_insert(0);
            // Several sites may allocate the same record type; pools must
            // cover their sum.
            *e += h;
        }
        for blk in st.expr.blocks() {
            collect_hints(blk, p, hints);
        }
    }
}

impl Rule for MemHoist {
    fn name(&self) -> &'static str {
        "memory-allocation-hoisting"
    }

    fn prepare(&mut self, _p: &Program, b: &mut IrBuilder) {
        // Topological concerns from the appendix (pools referencing other
        // pools) do not arise here because pools are untyped byte arenas at
        // the C level; we simply emit one pool per record type up front.
        let mut sids: Vec<(StructId, u64)> = self.hints.iter().map(|(s, h)| (*s, *h)).collect();
        sids.sort_by_key(|(s, _)| *s);
        for (sid, hint) in sids {
            let pool = b.pool_new(Type::Record(sid), Atom::Int(hint.min(1 << 28) as i64));
            self.pools.insert(sid, pool);
        }
    }

    fn apply(&mut self, rw: &mut Rewriter<'_>, _sym: Sym, _ty: &Type, e: &Expr) -> Option<Atom> {
        if let Expr::StructNew { sid, args } = e {
            let pool = self.pools.get(sid).expect("pool for record type").clone();
            let p = rw.b.pool_alloc(pool);
            for (i, a) in args.iter().enumerate() {
                let v = rw.atom(a);
                rw.b.field_set(p.clone(), *sid, i, v);
            }
            return Some(p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::{FieldDef, StructDef};

    #[test]
    fn struct_news_become_pool_allocs() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "R".into(),
            fields: vec![FieldDef {
                name: "x".into(),
                ty: Type::Int,
            }],
        });
        b.for_range(Atom::Int(0), Atom::Int(10), |bb, i| {
            let r = bb.struct_new(sid, vec![i]);
            if let Atom::Sym(s) = r {
                bb.annotate(s, dblab_ir::expr::Annot::SizeHint(10));
            }
            let x = bb.field_get(r, sid, 0);
            bb.printf("%d\n", vec![x]);
        });
        let p = b.finish(Atom::Unit, Level::ScaLite);
        let q = apply(&p);
        let text = dblab_ir::printer::print_program(&q);
        assert!(text.contains("new Pool"), "{text}");
        assert!(text.contains(".alloc"), "{text}");
        assert!(!text.contains("new #"), "no StructNew left: {text}");
        assert_eq!(q.level, Level::CScala);
        // The pool is created before the loop.
        assert!(matches!(q.body.stmts[0].expr, Expr::PoolNew { .. }));
    }

    #[test]
    fn pool_sizes_accumulate_across_sites() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "R".into(),
            fields: vec![FieldDef {
                name: "x".into(),
                ty: Type::Int,
            }],
        });
        for hint in [100u64, 200] {
            let r = b.struct_new(sid, vec![Atom::Int(1)]);
            if let Atom::Sym(s) = r {
                b.annotate(s, dblab_ir::expr::Annot::SizeHint(hint));
            }
            let x = b.field_get(r, sid, 0);
            b.printf("%d\n", vec![x]);
        }
        let p = b.finish(Atom::Unit, Level::ScaLite);
        let q = apply(&p);
        match &q.body.stmts[0].expr {
            Expr::PoolNew { cap, .. } => assert_eq!(*cap, Atom::Int(300)),
            other => panic!("expected pool, got {other:?}"),
        }
    }
}
