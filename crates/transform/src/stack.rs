//! The compilation driver: assembles the configured DSL stack from the
//! [`crate::pass`] registry and runs it top to bottom, optimizing to
//! fixpoint at each level and recording an instrumented snapshot per stage
//! (the paper's progressive-lowering methodology, §2; the per-level
//! optimization sets are the Table 3 experiment axis).
//!
//! The pipeline is **data-driven**: which passes run is decided by each
//! pass's `applies(cfg)` predicate, the order by the registry, and the
//! level contracts by each pass's declaration — there is no per-pass
//! control flow here. Debug/test builds additionally validate the program
//! against its entitled dialect window after every pass (see
//! [`crate::pass`] for the window semantics).

use std::time::{Duration, Instant};

use dblab_catalog::Schema;
use dblab_frontend::qmonad::QMonad;
use dblab_frontend::qplan::QueryProgram;
use dblab_ir::level::validate_window;
use dblab_ir::opt::optimize;
use dblab_ir::{Level, Program};

use crate::config::StackConfig;
use crate::pass::{self, Frontend, MonadLowering, Pass, PassCtx, PassKind, PlanLowering};

/// One stage of the compilation, for inspection, benches and tests.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    pub name: String,
    pub kind: PassKind,
    /// Program level when the stage started / after it finished: equal for
    /// optimizations, one (or more, on partial stacks) apart for lowerings.
    pub level_before: Level,
    pub level: Level,
    /// Statement count (incl. nested blocks) before / after the stage.
    pub size_before: usize,
    pub size: usize,
    /// Wall-clock time of the rewrite plus its fixpoint re-optimization
    /// (on a memo hit: the hash + lookup time).
    pub time: Duration,
    /// Whether the stage output came from the per-pass IR cache
    /// ([`crate::memo`]) instead of re-running the rewrite.
    pub cached: bool,
}

impl StageSnapshot {
    /// Net IR growth (positive) or shrinkage (negative) of the stage.
    pub fn size_delta(&self) -> i64 {
        self.size as i64 - self.size_before as i64
    }

    /// Did this stage move the program to a lower level?
    pub fn lowered(&self) -> bool {
        self.level != self.level_before
    }
}

/// A compiled query: the final IR program plus instrumented stage metadata.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub program: Program,
    pub stages: Vec<StageSnapshot>,
    /// Pure compiler time (the DBLAB half of Figure 9).
    pub gen_time: Duration,
    pub config: StackConfig,
}

impl CompiledQuery {
    /// The stage metadata recorded after the named pass (the snapshots
    /// store only metadata; use [`compile_with_snapshots`] to retain full
    /// programs for level-by-level differential testing).
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total wall-clock across recorded stages (excludes driver overhead,
    /// so slightly below [`CompiledQuery::gen_time`]).
    pub fn stage_time_total(&self) -> Duration {
        self.stages.iter().map(|s| s.time).sum()
    }

    /// How many stages were served from the per-pass IR cache.
    pub fn cache_hits(&self) -> usize {
        self.stages.iter().filter(|s| s.cached).count()
    }

    /// A human-readable per-pass trace: wall time, IR-size delta and level
    /// transition per stage. Consumed by `--show-ir`-style example output
    /// and the compile-time benches.
    pub fn stage_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26}{:>10}{:>8}{:>7}  {}\n",
            "stage", "time", "stmts", "Δ", "level"
        ));
        for s in &self.stages {
            let transition = if s.lowered() {
                format!("{} -> {}", s.level_before, s.level)
            } else {
                s.level.to_string()
            };
            out.push_str(&format!(
                "{:<26}{:>8.2}ms{:>8}{:>+7}  {}{}\n",
                s.name,
                s.time.as_secs_f64() * 1e3,
                s.size,
                s.size_delta(),
                transition,
                if s.cached { "  [cached]" } else { "" }
            ));
        }
        let hits = self.cache_hits();
        out.push_str(&format!(
            "{:<26}{:>8.2}ms{}\n",
            "total (gen)",
            self.gen_time.as_secs_f64() * 1e3,
            if hits > 0 {
                format!(
                    "  ({hits} stage-cache hit{})",
                    if hits == 1 { "" } else { "s" }
                )
            } else {
                String::new()
            }
        ));
        out
    }
}

/// Compile a QPlan program through the configured stack.
pub fn compile(prog: &QueryProgram, schema: &Schema, cfg: &StackConfig) -> CompiledQuery {
    let (cq, _) = compile_frontend(&PlanLowering(prog), schema, cfg, false);
    cq
}

/// Compile, optionally retaining the full IR program after every stage
/// (used by the differential tests and the `--show-ir` example flag).
pub fn compile_with_snapshots(
    prog: &QueryProgram,
    schema: &Schema,
    cfg: &StackConfig,
    keep_programs: bool,
) -> (CompiledQuery, Vec<(String, Program)>) {
    compile_frontend(&PlanLowering(prog), schema, cfg, keep_programs)
}

/// Compile a QMonad query through the configured stack (the alternative
/// front-end of §4.5; everything below pipelining is shared).
pub fn compile_qmonad(q: &QMonad, schema: &Schema, cfg: &StackConfig) -> CompiledQuery {
    compile_frontend(&MonadLowering(q), schema, cfg, false).0
}

/// The generic driver: any front-end, then the registry-assembled stack
/// in baseline (registry) order.
pub fn compile_frontend(
    fe: &dyn Frontend,
    schema: &Schema,
    cfg: &StackConfig,
    keep: bool,
) -> (CompiledQuery, Vec<(String, Program)>) {
    let registry = pass::registry();
    let selected = pass::check_pipeline(&registry, cfg)
        .unwrap_or_else(|e| panic!("config `{}` selects an ill-formed stack: {e}", cfg.name));
    run_pipeline(fe, schema, cfg, &selected, keep)
}

/// Compile a QPlan program through an **explicit schedule**: a permutation
/// of the selected passes, validated against the pass-commutation DAG
/// ([`crate::schedule::Scheduler`]) before anything runs. Every per-stage
/// contract check (level transitions, dialect-window validation in
/// debug/test builds) applies exactly as in registry order.
pub fn compile_ordered(
    prog: &QueryProgram,
    schema: &Schema,
    cfg: &StackConfig,
    order: &[&str],
) -> Result<CompiledQuery, String> {
    compile_ordered_with_snapshots(prog, schema, cfg, order, false).map(|(cq, _)| cq)
}

/// [`compile_ordered`], optionally retaining the full IR program after
/// every stage (the schedule-differential suite walks these).
pub fn compile_ordered_with_snapshots(
    prog: &QueryProgram,
    schema: &Schema,
    cfg: &StackConfig,
    order: &[&str],
    keep_programs: bool,
) -> Result<(CompiledQuery, Vec<(String, Program)>), String> {
    let sched = crate::schedule::Scheduler::from_registry(cfg)?;
    compile_scheduled(&sched, prog, schema, order, keep_programs)
}

/// The sweep-friendly entry point: compile through an already-built
/// [`crate::schedule::Scheduler`] (its configuration decides the
/// selection), so a K-ordering × N-query sweep builds the DAG once, not
/// K × N times.
pub fn compile_scheduled(
    sched: &crate::schedule::Scheduler,
    prog: &QueryProgram,
    schema: &Schema,
    order: &[&str],
    keep_programs: bool,
) -> Result<(CompiledQuery, Vec<(String, Program)>), String> {
    sched.validate_order(order)?;
    let ordered: Vec<&dyn Pass> = order
        .iter()
        .map(|n| sched.pass_by_name(n).expect("validated"))
        .collect();
    Ok(run_pipeline(
        &PlanLowering(prog),
        schema,
        sched.config(),
        &ordered,
        keep_programs,
    ))
}

/// A compile whose schedule was picked by recorded cost (see
/// [`crate::schedule::cost`]): the stack output plus the provenance of
/// the scheduling decision, for serving-layer telemetry.
#[derive(Debug, Clone)]
pub struct CostScored {
    pub cq: CompiledQuery,
    /// The schedule the compile actually ran.
    pub order: Vec<&'static str>,
    /// Whether that schedule differs from the baseline (registry) order.
    pub non_baseline: bool,
    /// `true` when the pick was an exploration (candidate not yet
    /// measured), `false` when the model judged it cheapest.
    pub explored: bool,
    /// This compile's own pass-memo traffic (scoped, so concurrent
    /// compiles on other threads do not pollute it).
    pub memo: crate::memo::CacheStats,
}

/// Compile through the **cheapest recorded schedule**: ask the scheduler
/// for a cost-scored order (explore unmeasured candidates first, then
/// exploit the lowest recorded warm-compile latency), run it through the
/// contract-checked driver, and feed the measured generation time and
/// scoped memo traffic back into the cost model — each compile both uses
/// and trains the model.
pub fn compile_cost_scored(
    sched: &crate::schedule::Scheduler,
    prog: &QueryProgram,
    schema: &Schema,
    seed: u64,
    candidates: usize,
) -> Result<CostScored, String> {
    let choice = sched.cost_scored_order(seed, candidates);
    let scope = crate::memo::StatsScope::new();
    let (cq, _) = {
        let _guard = scope.enter();
        compile_scheduled(sched, prog, schema, &choice.order, false)?
    };
    let memo = scope.stats();
    crate::schedule::cost::record(
        sched.config().name,
        &choice.order,
        cq.gen_time.as_secs_f64() * 1e3,
        memo,
    );
    Ok(CostScored {
        cq,
        order: choice.order,
        non_baseline: choice.non_baseline,
        explored: choice.explored,
        memo,
    })
}

/// Front-end lowering into the top IR level, optimized to fixpoint — the
/// one definition of this step, shared by the driver and the scheduler's
/// commutation checker (so they can never diverge on the lowering or its
/// fixpoint budget). Returns the raw (pre-optimization) statement count
/// alongside the program for the stage snapshot.
pub(crate) fn lower_frontend(fe: &dyn Frontend, ctx: &PassCtx) -> (usize, Program) {
    let raw = fe.lower(ctx);
    (raw.body.size(), optimize(&raw, 8))
}

/// Shared driver body: front-end, then the given passes in the given
/// order, with the dialect ceiling tracking which vocabulary each
/// lowering discharges (ceiling advancement depends only on which
/// lowerings have run — it is schedule-order-stable).
fn run_pipeline(
    fe: &dyn Frontend,
    schema: &Schema,
    cfg: &StackConfig,
    passes: &[&dyn Pass],
    keep: bool,
) -> (CompiledQuery, Vec<(String, Program)>) {
    let ctx = PassCtx { schema, cfg };
    // Post-pass dialect validation is a debug/test-build safety net; the
    // release compiler keeps the paper's generation-time profile.
    let validate = cfg!(debug_assertions);

    let start = Instant::now();
    let mut stages = Vec::new();
    let mut programs = Vec::new();

    let t0 = Instant::now();
    let (raw_size, mut p) = lower_frontend(fe, &ctx);
    debug_assert_eq!(p.level, fe.target());
    if validate {
        let violations = validate_window(&p, fe.target(), p.level);
        assert!(
            violations.is_empty(),
            "front-end {} violated {}: {}",
            fe.name(),
            fe.target(),
            violations[0]
        );
    }
    stages.push(StageSnapshot {
        name: fe.name().to_string(),
        kind: PassKind::FrontendLowering,
        level_before: fe.target(),
        level: p.level,
        size_before: raw_size,
        size: p.body.size(),
        time: t0.elapsed(),
        // The front-end lowers an AST, not IR — outside the memo's domain.
        cached: false,
    });
    if keep {
        programs.push((fe.name().to_string(), p.clone()));
    }

    let mut ceiling = Level::MapList;
    for ps in passes {
        let ceiling_after = pass::advance_ceiling(ceiling, *ps);
        let (q, snap) = pass::apply_one(*ps, &p, &ctx, ceiling_after, validate)
            .unwrap_or_else(|e| panic!("stack contract broken: {e}"));
        ceiling = ceiling_after;
        if keep {
            programs.push((snap.name.clone(), q.clone()));
        }
        stages.push(snap);
        p = q;
    }

    (
        CompiledQuery {
            program: p,
            stages,
            gen_time: start.elapsed(),
            config: cfg.clone(),
        },
        programs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;
    use dblab_frontend::qplan::{AggFunc, JoinKind, QPlan};

    fn schema() -> Schema {
        let mut s = dblab_tpch::tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    }

    fn join_count_query() -> QueryProgram {
        QueryProgram::new(
            QPlan::scan("customer")
                .select(col("c_mktsegment").eq(lit_s("BUILDING")))
                .hash_join(
                    QPlan::scan("orders"),
                    JoinKind::Inner,
                    vec![col("c_custkey")],
                    vec![col("o_custkey")],
                )
                .agg(vec![], vec![("n", AggFunc::Count)]),
        )
    }

    #[test]
    fn level2_stays_at_maplist() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level2());
        assert_eq!(cq.program.level, Level::MapList);
        assert!(cq.stage("hash-table-specialization").is_none());
    }

    #[test]
    fn level4_reaches_cscala_through_list_level() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level4());
        assert_eq!(cq.program.level, Level::CScala);
        assert!(cq.stage("hash-table-specialization").is_some());
        assert!(cq.stage("list-specialization").is_none());
    }

    #[test]
    fn level5_runs_every_stage_in_order() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level5());
        let names: Vec<&str> = cq.stages.iter().map(|s| s.name.as_str()).collect();
        // index inference replaces the join's hash table, but aggregation
        // tables still flow through specialization.
        assert!(names.contains(&"pipelining"));
        assert!(names.contains(&"memory-hoisting"));
        assert_eq!(cq.program.level, Level::CScala);
        // Levels are monotonically non-increasing across stages.
        let mut last = Level::MapList;
        for s in &cq.stages {
            assert!(s.level >= last, "level went back up at {}", s.name);
            last = s.level;
        }
    }

    #[test]
    fn all_queries_compile_at_all_configs() {
        let schema = schema();
        for cfg in StackConfig::table3() {
            for (name, prog) in dblab_tpch::queries::all() {
                let cq = compile(&prog, &schema, &cfg);
                assert!(
                    cq.program.body.size() > 10,
                    "{name}@{}: trivial program",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn stages_are_instrumented() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level5());
        // Every stage records a level transition consistent with its
        // neighbours and a before/after size pair.
        for w in cq.stages.windows(2) {
            assert_eq!(w[1].level_before, w[0].level, "{} trace gap", w[1].name);
        }
        let spec = cq.stage("hash-table-specialization").expect("stage");
        assert!(spec.lowered());
        assert_eq!(spec.level_before, Level::MapList);
        assert_eq!(spec.level, Level::List);
        assert_ne!(spec.size, 0);
        // The report renders one line per stage plus header and total.
        let report = cq.stage_report();
        assert_eq!(report.lines().count(), cq.stages.len() + 2);
        assert!(report.contains("memory-hoisting"));
        // Stage times are populated and bounded by the whole compilation.
        assert!(cq.stage_time_total() <= cq.gen_time);
    }

    #[test]
    fn ordered_compile_matches_baseline_on_a_permuted_schedule() {
        let schema = schema();
        let cfg = StackConfig::level5();
        let q = join_count_query();
        let baseline = compile(&q, &schema, &cfg);
        let sched = crate::schedule::Scheduler::from_registry(&cfg).expect("dag");
        // A genuinely permuted schedule: the first sampled order that
        // differs from the baseline.
        let order = sched
            .sample_orders(7, 8)
            .into_iter()
            .find(|o| *o != sched.baseline())
            .expect("level-5 DAG admits non-baseline orders");
        let cq = compile_ordered(&q, &schema, &cfg, &order).expect("valid schedule");
        // Stage trace follows the requested order; final IR agrees with
        // the baseline (all sampled orders are commuting permutations).
        let stage_names: Vec<&str> = cq.stages[1..].iter().map(|s| s.name.as_str()).collect();
        assert_eq!(stage_names, order);
        assert_eq!(
            dblab_ir::hash::program_hash(&cq.program),
            dblab_ir::hash::program_hash(&baseline.program),
        );
    }

    #[test]
    fn cost_scored_compile_trains_the_model_and_converges() {
        let schema = schema();
        // Unique config name: the cost model is process-wide and keyed by
        // it, and other tests in this binary compile at level-5.
        let cfg = StackConfig {
            name: "cost-scored-stack-unit",
            ..StackConfig::level5()
        };
        let q = join_count_query();
        let sched = crate::schedule::Scheduler::from_registry(&cfg).expect("dag");
        let baseline = compile(&q, &schema, &cfg);
        let pool = sched.candidate_orders(11, 3);

        // One compile per candidate (exploration), then one more
        // (exploitation): every compile's result matches the baseline IR
        // — scheduling is a performance decision, never a semantic one.
        let mut picked_non_baseline = false;
        for i in 0..=pool.len() {
            let cs = compile_cost_scored(&sched, &q, &schema, 11, 3).expect("valid");
            assert_eq!(
                dblab_ir::hash::program_hash(&cs.cq.program),
                dblab_ir::hash::program_hash(&baseline.program),
                "cost-scored compile {i} diverged"
            );
            assert_eq!(cs.explored, i < pool.len(), "compile {i}");
            picked_non_baseline |= cs.non_baseline;
            // The compile recorded itself: the model has i+1 or pool.len()
            // orders for this config.
            assert_eq!(
                crate::schedule::cost::recorded_orders(cfg.name),
                (i + 1).min(pool.len())
            );
            assert_eq!(
                cs.memo.hits + cs.memo.misses,
                (cs.cq.stages.len() - 1) as u64,
                "scoped stats cover exactly this compile's passes"
            );
        }
        assert!(
            picked_non_baseline,
            "exploration must have tried a non-baseline order"
        );
    }

    #[test]
    fn ordered_compile_rejects_invalid_schedules() {
        let schema = schema();
        let cfg = StackConfig::level5();
        let q = join_count_query();
        let err = compile_ordered(&q, &schema, &cfg, &["final"]).unwrap_err();
        assert!(err.contains("passes"), "{err}");
        let mut bad = crate::schedule::Scheduler::from_registry(&cfg)
            .unwrap()
            .baseline();
        bad.reverse();
        assert!(compile_ordered(&q, &schema, &cfg, &bad).is_err());
    }

    #[test]
    fn qmonad_frontend_flows_through_the_same_registry() {
        use dblab_frontend::qmonad::QMonad;
        let q = QMonad::source("nation").count();
        let cq = compile_qmonad(&q, &schema(), &StackConfig::level5());
        assert_eq!(cq.program.level, Level::CScala);
        assert_eq!(cq.stages[0].kind, PassKind::FrontendLowering);
        assert!(cq.stage("memory-hoisting").is_some());
    }
}
