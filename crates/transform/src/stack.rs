//! The compilation driver: runs the configured DSL stack top to bottom,
//! optimizing to fixpoint at each level and recording a snapshot per stage
//! (the paper's progressive-lowering methodology, §2; the per-level
//! optimization sets are the Table 3 experiment axis).

use std::time::{Duration, Instant};

use dblab_catalog::Schema;
use dblab_frontend::qmonad::QMonad;
use dblab_frontend::qplan::QueryProgram;
use dblab_ir::opt::optimize;
use dblab_ir::{Level, Program};

use crate::config::StackConfig;
use crate::{field_removal, fine, fusion, hash_spec, horizontal, list_spec, mem_hoist, pipeline, string_dict};

/// One stage of the compilation, for inspection and tests.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    pub name: String,
    pub level: Level,
    /// Statement count (incl. nested blocks) after the stage.
    pub size: usize,
}

/// A compiled query: the final IR program plus stage metadata.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub program: Program,
    pub stages: Vec<StageSnapshot>,
    /// Pure compiler time (the DBLAB half of Figure 9).
    pub gen_time: Duration,
    pub config: StackConfig,
}

impl CompiledQuery {
    /// The IR program as produced after the named stage (for level-by-level
    /// differential testing, the snapshots store only metadata; use
    /// [`compile_with_snapshots`] to retain full programs).
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Compile a QPlan program through the configured stack.
pub fn compile(prog: &QueryProgram, schema: &Schema, cfg: &StackConfig) -> CompiledQuery {
    let (cq, _) = compile_with_snapshots(prog, schema, cfg, false);
    cq
}

/// Compile, optionally retaining the full IR program after every stage
/// (used by the differential tests and the `--show-ir` example flag).
pub fn compile_with_snapshots(
    prog: &QueryProgram,
    schema: &Schema,
    cfg: &StackConfig,
    keep_programs: bool,
) -> (CompiledQuery, Vec<(String, Program)>) {
    let start = Instant::now();
    let p = pipeline::lower_program(prog, schema, cfg);
    run_stack(p, schema, cfg, start, keep_programs)
}

/// Compile a QMonad query through the configured stack (the alternative
/// front-end of §4.5; everything below pipelining is shared).
pub fn compile_qmonad(q: &QMonad, schema: &Schema, cfg: &StackConfig) -> CompiledQuery {
    let start = Instant::now();
    let p = fusion::lower_qmonad(q, schema, cfg);
    run_stack(p, schema, cfg, start, false).0
}

fn run_stack(
    p: Program,
    schema: &Schema,
    cfg: &StackConfig,
    start: Instant,
    keep: bool,
) -> (CompiledQuery, Vec<(String, Program)>) {
    let mut stages = Vec::new();
    let mut programs = Vec::new();
    let mut record = |name: &str, p: &Program, programs: &mut Vec<(String, Program)>| {
        stages.push(StageSnapshot {
            name: name.to_string(),
            level: p.level,
            size: p.body.size(),
        });
        if keep {
            programs.push((name.to_string(), p.clone()));
        }
    };

    // ScaLite[Map, List]: pipelined program; optimize to fixpoint.
    let mut p = optimize(&p, 8);
    p = horizontal::apply(&p);
    record("pipelining", &p, &mut programs);

    if cfg.string_dict {
        p = optimize(&string_dict::apply(&p, schema), 4);
        record("string-dictionaries", &p, &mut programs);
    }

    // Lower to ScaLite[List]: hash-table specialization.
    if cfg.hash_spec {
        p = optimize(&hash_spec::apply(&p, cfg), 4);
        record("hash-table-specialization", &p, &mut programs);
    }

    // Lower to ScaLite: list specialization.
    if cfg.list_spec {
        p = optimize(&list_spec::apply(&p), 4);
        record("list-specialization", &p, &mut programs);
    }

    // ScaLite-level cleanups.
    p = field_removal::apply(&p, cfg.table_field_removal);
    p = optimize(&p, 4);
    record("field-removal", &p, &mut programs);

    // Lower to C.Scala: memory management.
    if cfg.mem_pools {
        p = optimize(&mem_hoist::apply(&p), 4);
        record("memory-hoisting", &p, &mut programs);
    }

    if cfg.branchless {
        p = fine::apply(&p);
        record("branch-optimization", &p, &mut programs);
    }

    p = optimize(&p, 4);
    record("final", &p, &mut programs);

    (
        CompiledQuery {
            program: p,
            stages,
            gen_time: start.elapsed(),
            config: cfg.clone(),
        },
        programs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;
    use dblab_frontend::qplan::{AggFunc, JoinKind, QPlan};

    fn schema() -> Schema {
        let mut s = dblab_tpch::tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    }

    fn join_count_query() -> QueryProgram {
        QueryProgram::new(
            QPlan::scan("customer")
                .select(col("c_mktsegment").eq(lit_s("BUILDING")))
                .hash_join(
                    QPlan::scan("orders"),
                    JoinKind::Inner,
                    vec![col("c_custkey")],
                    vec![col("o_custkey")],
                )
                .agg(vec![], vec![("n", AggFunc::Count)]),
        )
    }

    #[test]
    fn level2_stays_at_maplist() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level2());
        assert_eq!(cq.program.level, Level::MapList);
        assert!(cq.stage("hash-table-specialization").is_none());
    }

    #[test]
    fn level4_reaches_cscala_through_list_level() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level4());
        assert_eq!(cq.program.level, Level::CScala);
        assert!(cq.stage("hash-table-specialization").is_some());
        assert!(cq.stage("list-specialization").is_none());
    }

    #[test]
    fn level5_runs_every_stage_in_order() {
        let cq = compile(&join_count_query(), &schema(), &StackConfig::level5());
        let names: Vec<&str> = cq.stages.iter().map(|s| s.name.as_str()).collect();
        // index inference replaces the join's hash table, but aggregation
        // tables still flow through specialization.
        assert!(names.contains(&"pipelining"));
        assert!(names.contains(&"memory-hoisting"));
        assert_eq!(cq.program.level, Level::CScala);
        // Levels are monotonically non-increasing across stages.
        let mut last = Level::MapList;
        for s in &cq.stages {
            assert!(s.level >= last, "level went back up at {}", s.name);
            last = s.level;
        }
    }

    #[test]
    fn all_queries_compile_at_all_configs() {
        let schema = schema();
        for cfg in StackConfig::table3() {
            for (name, prog) in dblab_tpch::queries::all() {
                let cq = compile(&prog, &schema, &cfg);
                assert!(
                    cq.program.body.size() > 10,
                    "{name}@{}: trivial program",
                    cfg.name
                );
            }
        }
    }
}
