//! Pipelining for QMonad: shortcut fusion (§5.1, Figures 5 and 6).
//!
//! Every QMonad combinator is encoded in producer/consumer form — `build`
//! takes the downstream continuation `k`, `foreach` drives the upstream —
//! and the lowering *inlines* these encodings into one another, which is
//! exactly the `build(f1).foreach(f2) ⇝ f1(f2)` rewrite of Figure 5. In
//! Rust the continuations are closures over the IR builder, so "inlining"
//! happens by construction and the intermediate lists never exist.
//!
//! Combinators without a fused encoding (`sortBy`, `take`) lower through
//! their QPlan translation, reusing the machinery the plan front-end
//! already has — the paper's point that a new front-end "benefits from all
//! transformations that apply to [the lower levels] for free" (§4.5/§4.6).
//!
//! The naïve lowering of a multi-aggregate `fold` intentionally emits one
//! loop per aggregate; the horizontal-fusion optimization
//! ([`crate::horizontal`]) then merges them — mirroring the paper's split
//! between shortcut (vertical) fusion and horizontal fusion (§7.3).

use dblab_catalog::Schema;
use dblab_frontend::qmonad::QMonad;
use dblab_frontend::qplan::QueryProgram;
use dblab_ir::expr::PrimOp;
use dblab_ir::{Atom, Expr, Level, Program};

use crate::config::StackConfig;
use crate::pipeline::{row_format, Lowering};
use crate::scalar::{lower_expr, ColRef, RowEnv};

/// Lower a QMonad query to ScaLite\[Map, List\], printing result rows.
pub fn lower_qmonad(q: &QMonad, schema: &Schema, cfg: &StackConfig) -> Program {
    let mut lw = Lowering::new(schema, cfg);
    for t in q.tables() {
        lw.load(&t);
    }
    lw.b.prim(PrimOp::TimerStart, vec![]);

    let out_cols = q.to_qplan().output_cols(schema);
    let fmt = row_format(&out_cols);
    produce(&mut lw, q, &mut |lw, env| {
        let args = out_cols
            .iter()
            .map(|(n, _)| env.lookup(n).atom.clone())
            .collect();
        lw.b.emit_unit(Expr::Printf {
            fmt: fmt.as_str().into(),
            args,
        });
    });

    lw.b.prim(PrimOp::TimerStop, vec![]);
    lw.b.prim(PrimOp::PrintRusage, vec![]);
    lw.b.finish(Atom::Unit, Level::MapList)
}

/// The fused producer of a QMonad expression: `build { k => … }` with `k`
/// already inlined (Figure 6's encoding, specialised at compile time).
fn produce(lw: &mut Lowering<'_>, q: &QMonad, k: &mut dyn FnMut(&mut Lowering<'_>, &RowEnv)) {
    match q {
        // Source, filter and map have direct build/foreach encodings; the
        // consumer is spliced straight into the loop body.
        QMonad::Source { .. } | QMonad::Filter { .. } | QMonad::Map { .. } => match q {
            QMonad::Source { table } => {
                let plan = dblab_frontend::qplan::QPlan::scan(table);
                lw.produce(&plan, k);
            }
            QMonad::Filter { child, pred } => {
                produce(lw, child, &mut |lw, env| {
                    let p = lower_expr(&mut lw.b, env, &lw.params, pred);
                    lw.if_then(p, |lw| k(lw, env));
                });
            }
            QMonad::Map { child, cols } => {
                produce(lw, child, &mut |lw, env| {
                    let new_cols = cols
                        .iter()
                        .map(|(n, e)| ColRef {
                            name: n.clone(),
                            atom: lower_expr(&mut lw.b, env, &lw.params, e),
                            prov: match e {
                                dblab_frontend::expr::ScalarExpr::Col(c) => {
                                    env.lookup(c).prov.clone()
                                }
                                _ => None,
                            },
                        })
                        .collect();
                    k(lw, &RowEnv::new(new_cols));
                });
            }
            _ => unreachable!(),
        },
        // Joins, grouping, sorting and limits reuse the plan lowering —
        // by the expressibility principle their QPlan translation is
        // semantically identical, and the resulting IR is the same
        // push-mode code shortcut fusion would produce (§5.1).
        other => {
            let plan = other.to_qplan();
            lw.produce(&plan, k);
        }
    }
}

/// Convenience: full compile of a QMonad query through the configured
/// stack (fusion first, then the shared lowering chain).
pub fn monad_program(q: &QMonad) -> QueryProgram {
    QueryProgram::new(q.to_qplan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;

    fn schema() -> Schema {
        let mut s = dblab_tpch::tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    }

    #[test]
    fn filter_count_fuses_into_one_loop() {
        // R.filter(p).count — shortcut fusion must produce a single loop
        // with no intermediate list (the paper's central §5.1 claim).
        let q = QMonad::source("nation")
            .filter(col("n_regionkey").eq(lit_i(1)))
            .count();
        let cfg = StackConfig::level2();
        let p = lower_qmonad(&q, &schema(), &cfg);
        let text = dblab_ir::printer::print_program(&p);
        assert!(!text.contains("new List"), "no materialization: {text}");
        assert!(!text.contains("MultiMap"), "{text}");
        let loops = count_loops_top(&p);
        assert_eq!(loops, 1, "{text}");
    }

    #[test]
    fn join_reuses_lower_level_machinery() {
        let q = QMonad::source("nation")
            .hash_join(
                QMonad::source("region"),
                vec![col("n_regionkey")],
                vec![col("r_regionkey")],
            )
            .count();
        let cfg = StackConfig::level2();
        let p = lower_qmonad(&q, &schema(), &cfg);
        let text = dblab_ir::printer::print_program(&p);
        assert!(text.contains("MultiMap"), "{text}");
        assert!(dblab_ir::level::validate(&p).is_empty());
    }

    fn count_loops_top(p: &Program) -> usize {
        p.body
            .stmts
            .iter()
            .filter(|st| matches!(st.expr, Expr::ForRange { .. }))
            .count()
    }
}
