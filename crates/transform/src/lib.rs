//! # dblab-transform — the DSL stack
//!
//! This crate realises the paper's central artifact: a stack of DSL levels
//! connected by *lowering* transformations, with *optimizations* applied to
//! fixpoint inside each level (§2). The [`stack`] module drives the whole
//! pipeline; everything else is one transformation each (the units counted
//! in the paper's Table 4):
//!
//! | module | paper | kind |
//! |--------|-------|------|
//! | [`pipeline`] | pipelining for QPlan, §5.1 | lowering QPlan → ScaLite\[Map, List\] |
//! | [`fusion`] | pipelining for QMonad (shortcut fusion), §5.1 | lowering QMonad → ScaLite\[Map, List\] |
//! | [`horizontal`] | horizontal fusion, §7.3 | optimization @ ScaLite\[Map, List\] |
//! | [`string_dict`] | string dictionaries, §5.3 | optimization @ ScaLite\[Map, List\] |
//! | [`index_inference`] | automatic index inference + partitioning, §5.2/App. B.1 | optimization @ ScaLite\[Map, List\] |
//! | [`hash_spec`] | hash-table specialization, §5.2/App. B.2 | lowering ScaLite\[Map, List\] → ScaLite\[List\] |
//! | [`list_spec`] | list specialization, §4.4 | lowering ScaLite\[List\] → ScaLite |
//! | [`field_removal`] | unused-struct-field removal, App. C | optimization @ ScaLite |
//! | [`mem_hoist`] | memory-allocation hoisting, App. D.1 | lowering ScaLite → C.Scala |
//! | [`layout`] | storage-layout specialization, App. C | decision recorded for the C.Scala unparser |
//! | [`fine`] | `&&` → `&` and friends, App. E | optimization @ C.Scala |
//!
//! The scalar expression lowering shared by both front-ends lives in
//! [`scalar`]; [`config`] defines the per-level optimization sets (the
//! experiment axis of the paper's Table 3).
//!
//! Every transformation above is registered with the contract-checked
//! **pass manager** in [`pass`]: a [`pass::Pass`] declares its name, its
//! input/output [`dblab_ir::Level`] contract and an `applies(cfg)`
//! predicate, and the [`stack`] driver assembles the pipeline from the
//! registry — which passes run is decided by data ([`StackConfig`]), not
//! call sites, and debug builds mechanically validate the dialect after
//! every pass.

pub mod config;
pub mod field_removal;
pub mod fine;
pub mod fusion;
pub mod hash_spec;
pub mod horizontal;
pub mod index_inference;
pub mod layout;
pub mod list_spec;
pub mod mem_hoist;
pub mod memo;
pub mod parallelize;
pub mod pass;
pub mod pipeline;
pub mod scalar;
pub mod schedule;
pub mod stack;
pub mod string_dict;

pub use config::StackConfig;
pub use pass::{Pass, PassCtx, PassKind};
pub use schedule::{ScheduleChoice, Scheduler};
pub use stack::{
    compile, compile_cost_scored, compile_ordered, CompiledQuery, CostScored, StageSnapshot,
};
