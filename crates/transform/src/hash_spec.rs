//! Hash-table specialization: the lowering from ScaLite\[Map, List\] to
//! ScaLite\[List\] (§5.2, Appendix B.2).
//!
//! The abstract `HashMap`/`MultiMap` nodes become concrete storage:
//!
//! * **MultiMaps** become a power-of-two array of buckets
//!   (`Array[List[Pair]]`, Figure 4e) sized from the worst-case
//!   cardinality annotation, with inline hashing and key re-checks;
//! * **HashMaps** with a dense integer key annotation become a direct
//!   `Array[AggRec]` (Figure 7d's shape applied to aggregation), optionally
//!   with initialization hoisted out of the hot loop (Appendix D.2);
//! * other **HashMaps** become bucket arrays with get-or-insert probes.
//!
//! All emitted list operations are ScaLite\[List\] vocabulary; the next
//! lowering ([`crate::list_spec`]) decides their final representation.

use std::collections::HashMap;

use dblab_ir::expr::{Annot, Atom, Block, Expr, PrimOp, Sym, UnOp};
use dblab_ir::rewrite::{run_rule, Rewriter, Rule};
use dblab_ir::types::{FieldDef, StructDef, StructId};
use dblab_ir::{IrBuilder, Level, Program, Type};

use crate::config::StackConfig;

/// Per-MultiMap (or bucketised HashMap) state.
struct Buckets {
    arr: Atom,
    mask: i64,
    pair_sid: StructId,
}

struct DenseMap {
    arr: Atom,
    len: i64,
    rec_sid: StructId,
    hoisted: bool,
}

enum MapRepr {
    Buckets(Buckets),
    Dense(DenseMap),
}

struct HashSpec {
    cfg: StackConfig,
    maps: HashMap<Sym, MapRepr>,
    pair_ctr: usize,
}

/// Apply hash-table specialization; the result is a ScaLite\[List\]
/// program.
pub fn apply(p: &Program, cfg: &StackConfig) -> Program {
    let mut rule = HashSpec {
        cfg: cfg.clone(),
        maps: HashMap::new(),
        pair_ctr: 0,
    };
    run_rule(p, &mut rule, Level::List)
}

impl HashSpec {
    fn fresh_pair(&mut self, b: &mut IrBuilder, key_ty: &Type, val_ty: &Type) -> StructId {
        self.pair_ctr += 1;
        b.structs.register(StructDef {
            name: format!("Pair{}", self.pair_ctr).into(),
            fields: vec![
                FieldDef {
                    name: "key".into(),
                    ty: key_ty.clone(),
                },
                FieldDef {
                    name: "value".into(),
                    ty: val_ty.clone(),
                },
            ],
        })
    }

    /// Emit a `Long` hash of `key`.
    fn hash(&self, b: &mut IrBuilder, key: &Atom) -> Atom {
        match b.atom_type(key) {
            Type::Int | Type::Long | Type::Bool => b.un(UnOp::HashInt, key.clone()),
            Type::Double => b.un(UnOp::HashDouble, key.clone()),
            Type::String => b.prim(PrimOp::HashStr, vec![key.clone()]),
            Type::Record(sid) => {
                // Combine the field hashes: h = h * 31 + hash(field).
                let def = b.structs.get(sid).clone();
                let mut h = Atom::Long(7);
                for i in 0..def.fields.len() {
                    let f = b.field_get(key.clone(), sid, i);
                    let fh = self.hash(b, &f);
                    let m = b.mul(h, Atom::Long(31));
                    h = b.add(m, fh);
                }
                h
            }
            other => panic!("cannot hash key of type {other}"),
        }
    }

    /// Bucket index of `key` for a mask.
    fn bucket_index(&self, b: &mut IrBuilder, key: &Atom, mask: i64) -> Atom {
        let h = self.hash(b, key);
        let masked = b.bin(dblab_ir::BinOp::BitAnd, h, Atom::Long(mask));
        b.un(UnOp::L2I, masked)
    }

    /// Structural key equality.
    fn key_eq(&self, b: &mut IrBuilder, x: &Atom, y: &Atom) -> Atom {
        key_eq_static(b, x, y)
    }

    /// Allocate a bucket array (`Array[List[Pair]]`); `hint` drives the
    /// power-of-two sizing (≤ 50% load). Buckets are created **lazily** on
    /// first insertion — pre-initializing millions of empty containers
    /// would dwarf the query itself for large worst-case estimates.
    fn make_buckets(
        &mut self,
        b: &mut IrBuilder,
        key_ty: Type,
        val_ty: Type,
        hint: u64,
    ) -> (Atom, i64, StructId) {
        let n = (hint.max(8) * 2).next_power_of_two().min(1 << 26) as i64;
        let pair_sid = self.fresh_pair(b, &key_ty, &val_ty);
        let arr = b.array_new(Type::list(Type::Record(pair_sid)), Atom::Int(n));
        (arr, n - 1, pair_sid)
    }

    /// Fetch `arr[idx]`, creating the bucket list on first touch.
    fn bucket_lazy(&self, b: &mut IrBuilder, arr: &Atom, idx: &Atom, pair_sid: StructId) -> Atom {
        let lty = Type::list(Type::Record(pair_sid));
        let l0 = b.array_get(arr.clone(), idx.clone());
        let isnull = b.eq(l0, Atom::Null(Box::new(lty.clone())));
        b.scope_push();
        let nl = b.list_new(Type::Record(pair_sid));
        b.array_set(arr.clone(), idx.clone(), nl);
        let then_b = b.scope_pop(Atom::Unit);
        b.emit_unit(Expr::If {
            cond: isnull,
            then_b,
            else_b: Block::default(),
        });
        b.array_get(arr.clone(), idx.clone())
    }

    /// Run `f` on `arr[idx]` only when the bucket exists.
    fn bucket_if_present(
        &self,
        b: &mut IrBuilder,
        arr: &Atom,
        idx: &Atom,
        pair_sid: StructId,
        f: impl FnOnce(&mut IrBuilder, Atom),
    ) {
        let lty = Type::list(Type::Record(pair_sid));
        let l = b.array_get(arr.clone(), idx.clone());
        let nonnull = b.ne(l.clone(), Atom::Null(Box::new(lty)));
        b.scope_push();
        f(b, l);
        let then_b = b.scope_pop(Atom::Unit);
        b.emit_unit(Expr::If {
            cond: nonnull,
            then_b,
            else_b: Block::default(),
        });
    }
}

impl Rule for HashSpec {
    fn name(&self) -> &'static str {
        "hash-table-specialization"
    }

    fn apply(&mut self, rw: &mut Rewriter<'_>, sym: Sym, _ty: &Type, e: &Expr) -> Option<Atom> {
        match e {
            // ---- MultiMap ------------------------------------------------
            Expr::MultiMapNew { key, value } => {
                let hint = rw.old.annots.size_hint(sym).unwrap_or(1024);
                let (arr, mask, pair_sid) =
                    self.make_buckets(&mut rw.b, key.clone(), value.clone(), hint);
                self.maps.insert(
                    sym,
                    MapRepr::Buckets(Buckets {
                        arr: arr.clone(),
                        mask,
                        pair_sid,
                    }),
                );
                Some(arr)
            }
            Expr::MultiMapAdd { map, key, value } => {
                let ms = map.as_sym().expect("multimap atom");
                let MapRepr::Buckets(info) = &self.maps[&ms] else {
                    unreachable!("multimap lowered to dense map")
                };
                let (arr, mask, pair_sid) = (info.arr.clone(), info.mask, info.pair_sid);
                let k = rw.atom(key);
                let v = rw.atom(value);
                let idx = self.bucket_index(&mut rw.b, &k, mask);
                let pair = rw.b.struct_new(pair_sid, vec![k, v]);
                if let Atom::Sym(s) = pair {
                    if let Some(h) = rw.old.annots.size_hint(ms) {
                        rw.b.annotate(s, Annot::SizeHint(h));
                    }
                }
                let l = self.bucket_lazy(&mut rw.b, &arr, &idx, pair_sid);
                rw.b.list_append(l, pair);
                Some(Atom::Unit)
            }
            Expr::MultiMapForeachAt {
                map,
                key,
                var,
                body,
            } => {
                let ms = map.as_sym().expect("multimap atom");
                let MapRepr::Buckets(info) = &self.maps[&ms] else {
                    unreachable!()
                };
                let (arr, mask, pair_sid) = (info.arr.clone(), info.mask, info.pair_sid);
                let k = rw.atom(key);
                let idx = self.bucket_index(&mut rw.b, &k, mask);
                let lty = Type::list(Type::Record(pair_sid));
                let l = rw.b.array_get(arr, idx);
                let nonnull = rw.b.ne(l.clone(), Atom::Null(Box::new(lty)));
                rw.b.scope_push();
                {
                    // for (p <- bucket) if (p.key == k) { val v = p.value; body }
                    let pvar = rw.b.bind(Type::Record(pair_sid));
                    rw.b.scope_push();
                    {
                        let pk = rw.b.field_get(Atom::Sym(pvar), pair_sid, 0);
                        let keq = self.key_eq(&mut rw.b, &pk, &k);
                        rw.b.scope_push();
                        let v = rw.b.field_get(Atom::Sym(pvar), pair_sid, 1);
                        rw.map(*var, v);
                        rw.block_inline(self, body);
                        let then_b = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::If {
                            cond: keq,
                            then_b,
                            else_b: Block::default(),
                        });
                    }
                    let fbody = rw.b.scope_pop(Atom::Unit);
                    rw.b.emit_unit(Expr::ListForeach {
                        list: l.clone(),
                        var: pvar,
                        body: fbody,
                    });
                }
                let guarded = rw.b.scope_pop(Atom::Unit);
                rw.b.emit_unit(Expr::If {
                    cond: nonnull,
                    then_b: guarded,
                    else_b: Block::default(),
                });
                Some(Atom::Unit)
            }

            // ---- HashMap -------------------------------------------------
            Expr::HashMapNew { key, value } => {
                let hint = rw.old.annots.size_hint(sym).unwrap_or(1024);
                let dense = rw.old.annots.dense_key(sym);
                let has_minmax = rw
                    .old
                    .annots
                    .get(sym)
                    .iter()
                    .any(|a| matches!(a, Annot::Comment(c) if &**c == "has_minmax"));
                let vrec = match value {
                    Type::Record(sid) => *sid,
                    other => panic!("hash map values must be records, got {other}"),
                };
                if let Some(max) = dense.filter(|_| *key == Type::Int) {
                    let len = max as i64 + 1;
                    let arr = rw.b.array_new(Type::Record(vrec), Atom::Int(len));
                    let hoisted = self.cfg.init_hoist && !has_minmax && neutral_init(&rw.b, vrec);
                    if hoisted {
                        // Appendix D.2: pre-initialize every slot (key field
                        // first, neutral accumulators after); the emission
                        // loop later skips rows with __cnt == 0.
                        let def = rw.b.structs.get(vrec).clone();
                        let var = rw.b.bind(Type::Int);
                        rw.b.scope_push();
                        let args: Vec<Atom> = def
                            .fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| {
                                if i == 0 {
                                    Atom::Sym(var)
                                } else {
                                    zero_of(&f.ty)
                                }
                            })
                            .collect();
                        let rec = rw.b.struct_new(vrec, args);
                        if let Atom::Sym(s) = rec {
                            rw.b.annotate(s, Annot::SizeHint(len as u64));
                        }
                        rw.b.array_set(arr.clone(), Atom::Sym(var), rec);
                        let body = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::ForRange {
                            lo: Atom::Int(0),
                            hi: Atom::Int(len),
                            var,
                            body,
                        });
                    }
                    self.maps.insert(
                        sym,
                        MapRepr::Dense(DenseMap {
                            arr: arr.clone(),
                            len,
                            rec_sid: vrec,
                            hoisted,
                        }),
                    );
                    Some(arr)
                } else {
                    let (arr, mask, pair_sid) =
                        self.make_buckets(&mut rw.b, key.clone(), value.clone(), hint);
                    self.maps.insert(
                        sym,
                        MapRepr::Buckets(Buckets {
                            arr: arr.clone(),
                            mask,
                            pair_sid,
                        }),
                    );
                    Some(arr)
                }
            }
            Expr::HashMapGetOrInit { map, key, init } => {
                let ms = map.as_sym().expect("hashmap atom");
                match &self.maps[&ms] {
                    MapRepr::Dense(d) => {
                        let (arr, rec_sid, hoisted) = (d.arr.clone(), d.rec_sid, d.hoisted);
                        let k = rw.atom(key);
                        if hoisted {
                            // Direct access — "the corresponding if
                            // condition no longer needs to be evaluated"
                            // (App. D.2).
                            return Some(rw.b.array_get(arr, k));
                        }
                        let r = rw.b.array_get(arr.clone(), k.clone());
                        let isnull = rw.b.eq(r, Atom::Null(Box::new(Type::Record(rec_sid))));
                        rw.b.scope_push();
                        let v = rw.block_inline(self, init);
                        rw.b.array_set(arr.clone(), k.clone(), v);
                        let then_b = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::If {
                            cond: isnull,
                            then_b,
                            else_b: Block::default(),
                        });
                        Some(rw.b.array_get(arr, k))
                    }
                    MapRepr::Buckets(info) => {
                        let (arr, mask, pair_sid) = (info.arr.clone(), info.mask, info.pair_sid);
                        let vty = rw.b.structs.get(pair_sid).fields[1].ty.clone();
                        let k = rw.atom(key);
                        let idx = self.bucket_index(&mut rw.b, &k, mask);
                        let vrec = match &vty {
                            Type::Record(s) => *s,
                            other => panic!("bucket value must be record, got {other}"),
                        };
                        let found = rw.b.decl_var(Atom::Null(Box::new(Type::Record(vrec))));
                        // probe (bucket may not exist yet)
                        self.bucket_if_present(&mut rw.b, &arr, &idx, pair_sid, |b, l| {
                            let pvar = b.bind(Type::Record(pair_sid));
                            b.scope_push();
                            {
                                let pk = b.field_get(Atom::Sym(pvar), pair_sid, 0);
                                let keq = key_eq_static(b, &pk, &k);
                                b.scope_push();
                                let v = b.field_get(Atom::Sym(pvar), pair_sid, 1);
                                b.assign(found, v);
                                let then_b = b.scope_pop(Atom::Unit);
                                b.emit_unit(Expr::If {
                                    cond: keq,
                                    then_b,
                                    else_b: Block::default(),
                                });
                            }
                            let fbody = b.scope_pop(Atom::Unit);
                            b.emit_unit(Expr::ListForeach {
                                list: l,
                                var: pvar,
                                body: fbody,
                            });
                        });
                        // insert on miss
                        let fv = rw.b.read_var(found);
                        let isnull = rw.b.eq(fv, Atom::Null(Box::new(Type::Record(vrec))));
                        rw.b.scope_push();
                        {
                            let v = rw.block_inline(self, init);
                            let pair = rw.b.struct_new(pair_sid, vec![k.clone(), v.clone()]);
                            if let (Atom::Sym(s), Some(h)) = (&pair, rw.old.annots.size_hint(ms)) {
                                rw.b.annotate(*s, Annot::SizeHint(h));
                            }
                            let l = self.bucket_lazy(&mut rw.b, &arr, &idx, pair_sid);
                            rw.b.list_append(l, pair);
                            rw.b.assign(found, v);
                        }
                        let then_b = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::If {
                            cond: isnull,
                            then_b,
                            else_b: Block::default(),
                        });
                        Some(rw.b.read_var(found))
                    }
                }
            }
            Expr::HashMapForeach {
                map,
                kvar,
                vvar,
                body,
            } => {
                let ms = map.as_sym().expect("hashmap atom");
                match &self.maps[&ms] {
                    MapRepr::Dense(d) => {
                        let (arr, len, rec_sid, hoisted) =
                            (d.arr.clone(), d.len, d.rec_sid, d.hoisted);
                        let var = rw.b.bind(Type::Int);
                        rw.b.scope_push();
                        {
                            let r = rw.b.array_get(arr, Atom::Sym(var));
                            let emit_body = |rule: &mut Self, rw: &mut Rewriter<'_>| {
                                rw.map(*kvar, Atom::Sym(var));
                                rw.map(*vvar, r.clone());
                                rw.block_inline(rule, body);
                            };
                            if hoisted {
                                emit_body(self, rw);
                            } else {
                                let isnull =
                                    rw.b.eq(r.clone(), Atom::Null(Box::new(Type::Record(rec_sid))));
                                let nonnull = rw.b.un(UnOp::Not, isnull);
                                rw.b.scope_push();
                                emit_body(self, rw);
                                let then_b = rw.b.scope_pop(Atom::Unit);
                                rw.b.emit_unit(Expr::If {
                                    cond: nonnull,
                                    then_b,
                                    else_b: Block::default(),
                                });
                            }
                        }
                        let lbody = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::ForRange {
                            lo: Atom::Int(0),
                            hi: Atom::Int(len),
                            var,
                            body: lbody,
                        });
                        Some(Atom::Unit)
                    }
                    MapRepr::Buckets(info) => {
                        let (arr, mask, pair_sid) = (info.arr.clone(), info.mask, info.pair_sid);
                        let var = rw.b.bind(Type::Int);
                        rw.b.scope_push();
                        {
                            let lty = Type::list(Type::Record(pair_sid));
                            let l = rw.b.array_get(arr, Atom::Sym(var));
                            let nonnull = rw.b.ne(l.clone(), Atom::Null(Box::new(lty)));
                            rw.b.scope_push();
                            {
                                let pvar = rw.b.bind(Type::Record(pair_sid));
                                rw.b.scope_push();
                                {
                                    let pk = rw.b.field_get(Atom::Sym(pvar), pair_sid, 0);
                                    let pv = rw.b.field_get(Atom::Sym(pvar), pair_sid, 1);
                                    rw.map(*kvar, pk);
                                    rw.map(*vvar, pv);
                                    rw.block_inline(self, body);
                                }
                                let fbody = rw.b.scope_pop(Atom::Unit);
                                rw.b.emit_unit(Expr::ListForeach {
                                    list: l.clone(),
                                    var: pvar,
                                    body: fbody,
                                });
                            }
                            let guarded = rw.b.scope_pop(Atom::Unit);
                            rw.b.emit_unit(Expr::If {
                                cond: nonnull,
                                then_b: guarded,
                                else_b: Block::default(),
                            });
                        }
                        let lbody = rw.b.scope_pop(Atom::Unit);
                        rw.b.emit_unit(Expr::ForRange {
                            lo: Atom::Int(0),
                            hi: Atom::Int(mask + 1),
                            var,
                            body: lbody,
                        });
                        Some(Atom::Unit)
                    }
                }
            }
            Expr::HashMapSize(_) => {
                unimplemented!("HashMapSize is not used by the TPC-H pipeline")
            }
            _ => None,
        }
    }
}

/// Structural key equality (free function so closures can call it).
fn key_eq_static(b: &mut IrBuilder, x: &Atom, y: &Atom) -> Atom {
    match b.atom_type(x) {
        Type::String => b.prim(PrimOp::StrEq, vec![x.clone(), y.clone()]),
        Type::Record(sid) => {
            let def = b.structs.get(sid).clone();
            let mut acc = Atom::Bool(true);
            for i in 0..def.fields.len() {
                let fx = b.field_get(x.clone(), sid, i);
                let fy = b.field_get(y.clone(), sid, i);
                let eq = key_eq_static(b, &fx, &fy);
                acc = b.and(acc, eq);
            }
            acc
        }
        _ => b.eq(x.clone(), y.clone()),
    }
}

/// Can every non-key field of the aggregate record start at a neutral zero?
/// (Holds for sum/count/avg accumulators; min/max records are excluded via
/// the `has_minmax` annotation before this is consulted.)
fn neutral_init(b: &IrBuilder, sid: StructId) -> bool {
    b.structs
        .get(sid)
        .fields
        .iter()
        .skip(1)
        .all(|f| matches!(f.ty, Type::Int | Type::Long | Type::Double))
}

fn zero_of(t: &Type) -> Atom {
    match t {
        Type::Double => Atom::double(0.0),
        Type::Long => Atom::Long(0),
        Type::Bool => Atom::Bool(false),
        _ => Atom::Int(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn has_node(p: &Program, pred: fn(&Expr) -> bool) -> bool {
        fn walk(b: &Block, pred: fn(&Expr) -> bool) -> bool {
            b.stmts
                .iter()
                .any(|st| pred(&st.expr) || st.expr.blocks().iter().any(|blk| walk(blk, pred)))
        }
        walk(&p.body, pred)
    }

    fn build_mm_program() -> Program {
        let mut b = IrBuilder::new();
        let mm = b.multimap_new(Type::Int, Type::Int);
        if let Atom::Sym(s) = mm {
            b.annotate(s, Annot::SizeHint(100));
        }
        b.multimap_add(mm.clone(), Atom::Int(1), Atom::Int(10));
        b.multimap_add(mm.clone(), Atom::Int(1), Atom::Int(20));
        let total = b.decl_var(Atom::Int(0));
        b.multimap_foreach_at(mm, Atom::Int(1), |bb, v| {
            let cur = bb.read_var(total);
            let n = bb.add(cur, v);
            bb.assign(total, n);
        });
        let out = b.read_var(total);
        b.printf("%d\n", vec![out]);
        b.finish(Atom::Unit, Level::MapList)
    }

    #[test]
    fn multimap_becomes_bucket_array() {
        let p = build_mm_program();
        let q = apply(&p, &StackConfig::level4());
        assert!(!has_node(&q, |e| matches!(e, Expr::MultiMapNew { .. })));
        assert!(!has_node(&q, |e| matches!(e, Expr::MultiMapAdd { .. })));
        assert!(has_node(&q, |e| matches!(e, Expr::ArrayNew { .. })));
        assert!(has_node(&q, |e| matches!(e, Expr::ListAppend { .. })));
        // Result is valid ScaLite[List].
        let violations = dblab_ir::level::validate(&q);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(q.level, Level::List);
    }

    #[test]
    fn dense_hashmap_becomes_direct_array() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "Agg".into(),
            fields: vec![
                FieldDef {
                    name: "k".into(),
                    ty: Type::Int,
                },
                FieldDef {
                    name: "__cnt".into(),
                    ty: Type::Long,
                },
            ],
        });
        let hm = b.hashmap_new(Type::Int, Type::Record(sid));
        if let Atom::Sym(s) = hm {
            b.annotate(s, Annot::SizeHint(50));
            b.annotate(s, Annot::DenseKey { max: 49 });
        }
        let rec = b.hashmap_get_or_init(hm.clone(), Atom::Int(7), |bb| {
            bb.struct_new(sid, vec![Atom::Int(7), Atom::Long(0)])
        });
        let c = b.field_get(rec.clone(), sid, 1);
        let c1 = b.add(c, Atom::Long(1));
        b.field_set(rec, sid, 1, c1);
        b.hashmap_foreach(hm, |bb, _k, r| {
            let c = bb.field_get(r, sid, 1);
            bb.printf("%ld\n", vec![c]);
        });
        let p = b.finish(Atom::Unit, Level::MapList);

        let q = apply(&p, &StackConfig::level4());
        assert!(!has_node(&q, |e| matches!(e, Expr::HashMapNew { .. })));
        // init hoisting pre-fills the array: a ForRange containing a
        // StructNew appears before the probe.
        assert!(has_node(&q, |e| matches!(e, Expr::ForRange { .. })));
        assert!(dblab_ir::level::validate(&q).is_empty());
    }

    #[test]
    fn string_keys_use_bucket_arrays_with_streq() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "Agg".into(),
            fields: vec![FieldDef {
                name: "__cnt".into(),
                ty: Type::Long,
            }],
        });
        let hm = b.hashmap_new(Type::String, Type::Record(sid));
        let _ = b.hashmap_get_or_init(hm, Atom::Str("x".into()), |bb| {
            bb.struct_new(sid, vec![Atom::Long(0)])
        });
        let p = b.finish(Atom::Unit, Level::MapList);
        let q = apply(&p, &StackConfig::level4());
        assert!(has_node(&q, |e| matches!(
            e,
            Expr::Prim(PrimOp::HashStr, _)
        )));
        assert!(has_node(&q, |e| matches!(e, Expr::Prim(PrimOp::StrEq, _))));
    }
}
