//! Morsel-driven scan parallelization (DBLAB-style intra-query
//! parallelism; cf. the "morsel" scheme of Leis et al., SIGMOD'14).
//!
//! The pass rewrites top-level data-sized scan loops — `for (i <- 0 until
//! arr.length)` — into [`Expr::ParallelFor`] nodes, provided every side
//! effect of the loop body falls into one of two shapes it knows how to
//! privatize:
//!
//! * **Shape A — scalar self-reductions.** An outer mutable variable only
//!   ever updated as `v = v OP delta` with one associative/commutative
//!   `OP ∈ {+, min, max}`. Each worker accumulates into a private copy
//!   (initialised to the identity for `+`, to the loop-invariant initial
//!   value for `min`/`max`, which are idempotent); the merge folds the
//!   worker copies back into `v` with the same `OP`. This covers the
//!   filter-aggregate queries (Q6-style).
//!
//! * **Shape B — privatized hash-table builds.** A bucket-array + memory-
//!   pool cluster (the residue of hash-table specialization + memory
//!   hoisting) that the body only mutates through fresh pool allocations,
//!   chain relinks on the bucket array, and associative self-reductions on
//!   fields of records *reached through* the bucket. Each worker builds a
//!   complete private table (same bucket count, so slot indices transfer
//!   without re-hashing); the merge walks every private chain and either
//!   relinks unseen keys into the shared table or folds the reduce fields
//!   of matching groups. This covers the group-by build loops (Q1-style).
//!
//! Anything else — I/O, sorts, list/map operations that mutate shared
//! state, writes the analysis cannot prove private — vetoes the loop, and
//! it stays serial. A vetoed loop is never wrong, only not faster.
//!
//! With `threads <= 1` the pass is the identity (it is not even selected
//! by the registry), so serial pipelines — and their memoized artifacts —
//! are bit-for-bit what they were before this pass existed.

use std::collections::{HashMap, HashSet};

use dblab_ir::expr::{Atom, Block, Expr, ParAcc, Stmt, Sym};
use dblab_ir::types::{StructId, Type};
use dblab_ir::{BinOp, PrimOp, Program};

use crate::horizontal::substitute_sym;

/// Rewrite every eligible top-level scan loop of `p` into a morsel-driven
/// [`Expr::ParallelFor`] over `threads` workers.
pub fn apply(p: &Program, threads: usize) -> Program {
    if threads <= 1 {
        return p.clone();
    }
    let mut q = p.clone();
    // Defs over the whole body: candidate detection needs the defining
    // expression of loop bounds and of the outer arrays/pools the body
    // touches.
    let global_defs = collect_defs(&q.body);
    // Fresh symbols for the merge blocks are appended here and committed
    // back once the rewrites are in place.
    let mut types = q.sym_types.clone();
    let mut rewrites: Vec<(usize, Expr)> = Vec::new();
    for (i, st) in q.body.stmts.iter().enumerate() {
        let Expr::ForRange { lo, hi, var, body } = &st.expr else {
            continue;
        };
        // Only data-sized scans: the bound must be an `ArrayLen`. This is
        // what separates the hot per-tuple loops from small fixed-trip
        // loops (bucket collects, result copies) that are not worth — and
        // often not safe — to parallelize.
        let Some(h) = hi.as_sym() else { continue };
        if !matches!(global_defs.get(&h), Some(Expr::ArrayLen(_))) {
            continue;
        }
        if let Some(par) = try_parallelize(p, &global_defs, lo, hi, *var, body, threads, &mut types)
        {
            rewrites.push((i, par));
        }
    }
    for (i, expr) in rewrites {
        q.body.stmts[i].expr = expr;
    }
    q.sym_types = types;
    q
}

// ---------------------------------------------------------------------
// analysis scaffolding
// ---------------------------------------------------------------------

/// Defining expression of every statement symbol, recursively.
fn collect_defs(b: &Block) -> HashMap<Sym, Expr> {
    let mut out = HashMap::new();
    fn walk(b: &Block, out: &mut HashMap<Sym, Expr>) {
        for st in &b.stmts {
            out.insert(st.sym, st.expr.clone());
            for sub in st.expr.blocks() {
                walk(sub, out);
            }
        }
    }
    walk(b, &mut out);
    out
}

/// All statements of a block, flattened across nested control flow.
fn flatten<'a>(b: &'a Block, out: &mut Vec<&'a Stmt>) {
    for st in &b.stmts {
        out.push(st);
        for sub in st.expr.blocks() {
            flatten(sub, out);
        }
    }
}

/// Symbols *declared* inside the block: statement symbols plus binders
/// (loop variables, foreach cursors).
fn declared_syms(b: &Block) -> HashSet<Sym> {
    let mut out = HashSet::new();
    fn walk(b: &Block, out: &mut HashSet<Sym>) {
        for st in &b.stmts {
            out.insert(st.sym);
            out.extend(st.expr.bound_syms());
            for sub in st.expr.blocks() {
                walk(sub, out);
            }
        }
    }
    walk(b, &mut out);
    out
}

// ---------------------------------------------------------------------
// the per-loop analysis
// ---------------------------------------------------------------------

/// Where a record pointer can originate, for the privacy analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Root {
    /// A pool allocation made *this iteration* — definitely fresh memory.
    Fresh,
    /// Private memory that may predate this iteration (reached through the
    /// privatized bucket array or through fields of private records).
    Priv,
    /// Anything the analysis cannot prove private (shared rows, outer
    /// state). Writing through this vetoes the loop.
    Other,
}

impl Root {
    fn join(self, other: Root) -> Root {
        use Root::*;
        match (self, other) {
            (Other, _) | (_, Other) => Other,
            (Priv, _) | (_, Priv) => Priv,
            (Fresh, Fresh) => Fresh,
        }
    }
}

struct LoopAnalysis<'a> {
    p: &'a Program,
    global_defs: &'a HashMap<Sym, Expr>,
    /// Defs inside the loop body only.
    defs: HashMap<Sym, Expr>,
    declared: HashSet<Sym>,
    uses: HashMap<Sym, usize>,
    stmts: Vec<&'a Stmt>,
    /// The one privatized bucket array (Shape B), if any.
    bucket: Option<Sym>,
    /// Outer pools the body allocates from (Shape B cluster).
    pools: Vec<Sym>,
    /// Memoized pointer-provenance results.
    roots: std::cell::RefCell<HashMap<Sym, Root>>,
}

impl<'a> LoopAnalysis<'a> {
    fn root_of_atom(&self, a: &Atom) -> Option<Root> {
        match a {
            Atom::Sym(s) => Some(self.root_of(*s)),
            Atom::Null(_) => None, // contributes nothing to provenance
            _ => Some(Root::Other),
        }
    }

    fn root_of(&self, s: Sym) -> Root {
        if let Some(r) = self.roots.borrow().get(&s) {
            return *r;
        }
        // Optimistic cycle handling: provenance through a cycle (a chain-
        // walk variable) contributes nothing on its own — any shared base
        // case still drives the join to `Other`.
        self.roots.borrow_mut().insert(s, Root::Priv);
        let r = self.root_of_uncached(s);
        self.roots.borrow_mut().insert(s, r);
        r
    }

    fn root_of_uncached(&self, s: Sym) -> Root {
        if !self.declared.contains(&s) {
            return Root::Other; // outer symbol: shared
        }
        let Some(def) = self.defs.get(&s) else {
            return Root::Other; // a binder (loop var / cursor): not a private pointer
        };
        match def {
            Expr::PoolAlloc { pool } => match pool.as_sym() {
                Some(pl) if self.pools.contains(&pl) => Root::Fresh,
                _ => Root::Other,
            },
            Expr::ArrayGet { arr, .. } => match (arr.as_sym(), self.bucket) {
                (Some(a), Some(b)) if a == b => Root::Priv,
                _ => Root::Other,
            },
            Expr::FieldGet { obj, sid, field } => {
                let obj_root = self
                    .root_of_atom(obj)
                    .unwrap_or(Root::Other /* fieldget on null would trap */);
                if obj_root == Root::Other {
                    return Root::Other;
                }
                if !matches!(self.p.structs.field_type(*sid, *field), Type::Record(_)) {
                    return Root::Other; // scalar loads have no provenance
                }
                // The field's contents are whatever the body ever stores
                // there: join the provenance of every such store. Reaching
                // through a field of a private record may yield a record
                // from an earlier iteration, hence at best `Priv`.
                let mut r: Option<Root> = None;
                for st in &self.stmts {
                    if let Expr::FieldSet {
                        sid: s2,
                        field: f2,
                        value,
                        ..
                    } = &st.expr
                    {
                        if s2 == sid && f2 == field {
                            if let Some(vr) = self.root_of_atom(value) {
                                r = Some(r.map_or(vr, |x| x.join(vr)));
                            }
                        }
                    }
                }
                match r {
                    Some(Root::Other) | None => Root::Other,
                    Some(_) => Root::Priv,
                }
            }
            Expr::ReadVar(v) => self.var_sources(*v),
            Expr::Atom(a) => self.root_of_atom(a).unwrap_or(Root::Fresh),
            Expr::If { then_b, else_b, .. } => {
                let t = self.root_of_atom(&then_b.result);
                let e = self.root_of_atom(&else_b.result);
                match (t, e) {
                    (None, None) => Root::Fresh,
                    (Some(r), None) | (None, Some(r)) => r,
                    (Some(a), Some(b)) => a.join(b),
                }
            }
            _ => Root::Other,
        }
    }

    /// Join the provenance of everything ever assigned to body-declared
    /// variable `v` (including its declaration).
    fn var_sources(&self, v: Sym) -> Root {
        let mut r: Option<Root> = None;
        let mut fold = |a: &Atom, slf: &Self| {
            if let Some(ar) = slf.root_of_atom(a) {
                r = Some(r.map_or(ar, |x| x.join(ar)));
            }
        };
        match self.defs.get(&v) {
            Some(Expr::DeclVar { init }) => fold(init, self),
            _ => return Root::Other,
        }
        for st in &self.stmts {
            if let Expr::Assign { var, value } = &st.expr {
                if *var == v {
                    fold(value, self);
                }
            }
        }
        r.unwrap_or(Root::Fresh) // only ever null: any deref would trap
    }
}

/// One Shape A reduction over an outer variable.
struct ScalarRed {
    var: Sym,
    op: BinOp,
    ty: Type,
    /// Worker-local initial value (the identity for `+`, the declared
    /// initial value for `min`/`max`).
    init: Atom,
}

/// The Shape B cluster, fully resolved.
struct TableRed {
    bucket: Sym,
    /// `ArrayNew` that created the bucket (cloned for each worker).
    bucket_def: Expr,
    bucket_len: Atom,
    /// Chain record type stored in the bucket.
    psid: StructId,
    /// Index of the intrusive `next` field on `psid`.
    next_field: usize,
    pools: Vec<(Sym, Expr)>,
    /// `(sid, field) -> op` for every associative self-reduction the body
    /// performs on records reached through the bucket.
    reduce: HashMap<(StructId, usize), BinOp>,
    /// `true` for aggregation tables (the body probes for the key before
    /// inserting, so keys are unique per worker and the merge folds
    /// matches); `false` for multimap join builds (duplicate keys are
    /// data, the merge concatenates chains wholesale).
    keyed: bool,
}

fn reduce_ops() -> [BinOp; 3] {
    [BinOp::Add, BinOp::Min, BinOp::Max]
}

#[allow(clippy::too_many_arguments)]
fn try_parallelize(
    p: &Program,
    global_defs: &HashMap<Sym, Expr>,
    lo: &Atom,
    hi: &Atom,
    var: Sym,
    body: &Block,
    threads: usize,
    types: &mut Vec<Type>,
) -> Option<Expr> {
    let mut stmts = Vec::new();
    flatten(body, &mut stmts);

    // ---- hard vetoes ---------------------------------------------------
    for st in &stmts {
        match &st.expr {
            Expr::Printf { .. }
            | Expr::Prim(PrimOp::TimerStart | PrimOp::TimerStop | PrimOp::PrintRusage, _)
            | Expr::LoadTable { .. }
            | Expr::LoadIndexUnique { .. }
            | Expr::LoadIndexStarts { .. }
            | Expr::LoadIndexItems { .. }
            | Expr::SortArray { .. }
            | Expr::Free(_)
            | Expr::Malloc { .. }
            | Expr::StructNew { .. }
            | Expr::ListNew { .. }
            | Expr::ListAppend { .. }
            | Expr::HashMapNew { .. }
            | Expr::HashMapGetOrInit { .. }
            | Expr::MultiMapNew { .. }
            | Expr::MultiMapAdd { .. }
            | Expr::ParallelFor { .. } => return None,
            _ => {}
        }
    }

    let declared = declared_syms(body);
    let defs = collect_defs(body);
    // `use_counts` also counts `Assign` targets, but those are only ever
    // queried for outer variables, which the Shape A check never asks
    // about — the counts it does read (reduction intermediates) are exact.
    let uses = body.use_counts();

    // ---- collect the side-effect surface --------------------------------
    let mut outer_arrays: Vec<Sym> = Vec::new();
    let mut outer_pools: Vec<Sym> = Vec::new();
    let mut outer_vars: Vec<Sym> = Vec::new();
    for st in &stmts {
        match &st.expr {
            Expr::ArraySet { arr, .. } => {
                let a = arr.as_sym()?;
                if !declared.contains(&a) && !outer_arrays.contains(&a) {
                    outer_arrays.push(a);
                }
            }
            Expr::PoolAlloc { pool } => {
                let pl = pool.as_sym()?;
                if !declared.contains(&pl) && !outer_pools.contains(&pl) {
                    outer_pools.push(pl);
                }
            }
            Expr::Assign { var: v, .. } if !declared.contains(v) && !outer_vars.contains(v) => {
                outer_vars.push(*v);
            }
            _ => {}
        }
    }
    if outer_arrays.len() > 1 {
        return None;
    }
    let bucket = outer_arrays.first().copied();
    if bucket.is_none() && !outer_pools.is_empty() {
        // Pool allocations escaping without a bucket to relink through:
        // nothing to merge against.
        return None;
    }

    let analysis = LoopAnalysis {
        p,
        global_defs,
        defs,
        declared,
        uses,
        stmts,
        bucket,
        pools: outer_pools.clone(),
        roots: std::cell::RefCell::new(HashMap::new()),
    };

    // ---- Shape A: every written outer variable is a self-reduction ------
    let mut scalars = Vec::new();
    for v in outer_vars {
        scalars.push(scalar_reduction(&analysis, v)?);
    }

    // ---- Shape B: the bucket cluster, if present -------------------------
    let table = match bucket {
        Some(b) => Some(table_reduction(&analysis, b, &outer_pools)?),
        None => None,
    };

    // ---- build the node --------------------------------------------------
    Some(build_parallel_for(
        p,
        lo,
        hi,
        var,
        body,
        threads,
        &scalars,
        table.as_ref(),
        types,
    ))
}

/// Check Shape A for outer variable `v` and describe its reduction.
fn scalar_reduction(a: &LoopAnalysis, v: Sym) -> Option<ScalarRed> {
    let ty = a.p.type_of(v).clone();
    // Every assignment must be `v = g OP d` where `g = readVar(v)` feeds
    // only this reduction, with one op across all sites.
    let mut op: Option<BinOp> = None;
    let mut consumed_reads: HashSet<Sym> = HashSet::new();
    for st in &a.stmts {
        let Expr::Assign { var, value } = &st.expr else {
            continue;
        };
        if *var != v {
            continue;
        }
        let s = value.as_sym()?;
        let Some(Expr::Bin(o, x, y)) = a.defs.get(&s) else {
            return None;
        };
        if !reduce_ops().contains(o) {
            return None;
        }
        if let Some(prev) = op {
            if prev != *o {
                return None;
            }
        }
        op = Some(*o);
        // Exactly one operand is the read-back of `v`.
        let is_read = |at: &Atom| -> Option<Sym> {
            let g = at.as_sym()?;
            match a.defs.get(&g) {
                Some(Expr::ReadVar(rv)) if *rv == v => Some(g),
                _ => None,
            }
        };
        let g = match (is_read(x), is_read(y)) {
            (Some(g), None) | (None, Some(g)) => g,
            _ => return None,
        };
        if a.uses.get(&g).copied().unwrap_or(0) != 1 || a.uses.get(&s).copied().unwrap_or(0) != 1 {
            return None;
        }
        consumed_reads.insert(g);
    }
    let op = op?;
    // No other reads of `v` may exist in the body: a read outside the
    // reduction would observe a partial, worker-local value.
    for st in &a.stmts {
        if let Expr::ReadVar(rv) = &st.expr {
            if *rv == v && !consumed_reads.contains(&st.sym) {
                return None;
            }
        }
    }
    let init = match op {
        BinOp::Add => match ty {
            Type::Int => Atom::Int(0),
            Type::Long => Atom::Long(0),
            Type::Double => Atom::double(0.0),
            _ => return None,
        },
        // min/max are idempotent, so seeding every worker with the loop-
        // invariant declared initial value keeps the fold exact.
        BinOp::Min | BinOp::Max => match a.global_defs.get(&v) {
            Some(Expr::DeclVar { init }) if init.is_const() => init.clone(),
            _ => return None,
        },
        _ => unreachable!("filtered by reduce_ops"),
    };
    Some(ScalarRed {
        var: v,
        op,
        ty,
        init,
    })
}

/// Check Shape B for the bucket array and describe the cluster.
fn table_reduction(a: &LoopAnalysis, bucket: Sym, pools: &[Sym]) -> Option<TableRed> {
    // The bucket must be a bucket array of chain records.
    let bucket_def = a.global_defs.get(&bucket)?.clone();
    let (elem, bucket_len) = match &bucket_def {
        Expr::ArrayNew { elem, len } => (elem.clone(), len.clone()),
        _ => return None,
    };
    let Type::Record(psid) = elem else {
        return None;
    };
    // Exactly one intrusive next field (what makes the chain walkable).
    let pdef = a.p.structs.get(psid);
    let next_fields: Vec<usize> = pdef
        .fields
        .iter()
        .enumerate()
        .filter(|(_, f)| f.ty == Type::Record(psid))
        .map(|(i, _)| i)
        .collect();
    let [next_field] = next_fields[..] else {
        return None;
    };
    // Each pool must be an outer PoolNew (cloned per worker).
    let mut pool_defs = Vec::new();
    for pl in pools {
        let d = a.global_defs.get(pl)?.clone();
        if !matches!(d, Expr::PoolNew { .. }) {
            return None;
        }
        pool_defs.push((*pl, d));
    }

    // Classify every write.
    let mut reduce: HashMap<(StructId, usize), BinOp> = HashMap::new();
    for st in &a.stmts {
        match &st.expr {
            Expr::ArraySet { arr, value, .. } => {
                // Only the bucket may be stored through, and only private
                // pointers may be linked into it. (A body-local scratch
                // array would be private too, but none of the generated
                // plans produce one — veto rather than reason about it.)
                if arr.as_sym() != Some(bucket) {
                    return None;
                }
                match a.root_of_atom(value) {
                    Some(Root::Fresh | Root::Priv) | None => {}
                    Some(Root::Other) => return None,
                }
            }
            Expr::FieldSet {
                obj,
                sid,
                field,
                value,
            } => {
                let o = obj.as_sym()?;
                match a.root_of(o) {
                    Root::Fresh => {
                        // Initialisation write on memory allocated this
                        // iteration: always private, any value shape.
                    }
                    Root::Priv => {
                        // May target a record from an earlier iteration:
                        // must be an associative self-reduction
                        // `o.f = o.f OP d`.
                        let s = value.as_sym()?;
                        let Some(Expr::Bin(op, x, y)) = a.defs.get(&s) else {
                            return None;
                        };
                        if !reduce_ops().contains(op) {
                            return None;
                        }
                        let is_self_get = |at: &Atom| -> bool {
                            at.as_sym().is_some_and(|g| {
                                matches!(a.defs.get(&g),
                                    Some(Expr::FieldGet { obj: o2, sid: s2, field: f2 })
                                        if o2.as_sym() == Some(o) && s2 == sid && f2 == field)
                            })
                        };
                        match (is_self_get(x), is_self_get(y)) {
                            (true, false) | (false, true) => {}
                            _ => return None,
                        }
                        match reduce.insert((*sid, *field), *op) {
                            Some(prev) if prev != *op => return None,
                            _ => {}
                        }
                    }
                    Root::Other => return None,
                }
            }
            _ => {}
        }
    }

    // Reduce fields must start at the op's identity on freshly allocated
    // records, or the merge double-counts the seed. Verify every
    // fresh-init write to a reduce field stores that identity.
    for st in &a.stmts {
        if let Expr::FieldSet {
            obj,
            sid,
            field,
            value,
        } = &st.expr
        {
            let Some(op) = reduce.get(&(*sid, *field)) else {
                continue;
            };
            let o = obj.as_sym()?;
            if a.root_of(o) != Root::Fresh {
                continue;
            }
            let identity = *op == BinOp::Add
                && (matches!(value, Atom::Int(0) | Atom::Long(0))
                    || value.as_double() == Some(0.0));
            if !identity {
                return None;
            }
        }
    }

    // An empty reduce map means the cluster is a multimap join build:
    // duplicate keys are data and the merge concatenates chains. That is
    // only sound when the body never *probes* the bucket — the only reads
    // allowed are the ones feeding the relink's next-pointer store on a
    // fresh record (dedup-by-probe with no accumulator would be broken by
    // concatenation, so it vetoes).
    let keyed = !reduce.is_empty();
    if !keyed {
        for st in &a.stmts {
            if let Expr::ArrayGet { arr, .. } = &st.expr {
                if arr.as_sym() != Some(bucket) {
                    continue;
                }
                let feeds_relink_only = a.uses.get(&st.sym).copied().unwrap_or(0) == 1
                    && a.stmts.iter().any(|s2| {
                        matches!(&s2.expr,
                            Expr::FieldSet { sid, field, value, .. }
                                if *sid == psid
                                    && *field == next_field
                                    && value.as_sym() == Some(st.sym))
                    });
                if !feeds_relink_only {
                    return None;
                }
            }
        }
    }

    // Every reduce target must be a type the merge can reach: the chain
    // record itself, or a record stored in one of its fields.
    let reachable: HashSet<StructId> = std::iter::once(psid)
        .chain(pdef.fields.iter().filter_map(|f| match &f.ty {
            Type::Record(s) if *s != psid => Some(*s),
            _ => None,
        }))
        .collect();
    if reduce.keys().any(|(sid, _)| !reachable.contains(sid)) {
        return None;
    }
    // Key fields (compared in the keyed merge) must be scalar-comparable.
    if keyed {
        for (i, f) in pdef.fields.iter().enumerate() {
            if i == next_field || reduce.contains_key(&(psid, i)) {
                continue;
            }
            match &f.ty {
                Type::Record(ksid) => {
                    let inner = a.p.structs.get(*ksid);
                    let is_value_rec = inner
                        .fields
                        .iter()
                        .enumerate()
                        .any(|(j, _)| reduce.contains_key(&(*ksid, j)));
                    if is_value_rec {
                        continue; // folded, not compared
                    }
                    if !inner.fields.iter().all(|kf| kf.ty.is_scalar()) {
                        return None;
                    }
                }
                t if t.is_scalar() => {}
                _ => return None,
            }
        }
    }

    Some(TableRed {
        bucket,
        bucket_def,
        bucket_len,
        psid,
        next_field,
        pools: pool_defs,
        reduce,
        keyed,
    })
}

// ---------------------------------------------------------------------
// node construction
// ---------------------------------------------------------------------

/// Fresh-symbol factory over the (pending) symbol table.
struct Fresh<'a> {
    types: &'a mut Vec<Type>,
}

impl Fresh<'_> {
    fn sym(&mut self, ty: Type) -> Sym {
        let s = Sym(self.types.len() as u32);
        self.types.push(ty);
        s
    }
    fn stmt(&mut self, ty: Type, expr: Expr) -> (Sym, Stmt) {
        let s = self.sym(ty.clone());
        (s, Stmt { sym: s, ty, expr })
    }
    fn unit_stmt(&mut self, expr: Expr) -> Stmt {
        self.stmt(Type::Unit, expr).1
    }
}

#[allow(clippy::too_many_arguments)]
fn build_parallel_for(
    p: &Program,
    lo: &Atom,
    hi: &Atom,
    var: Sym,
    body: &Block,
    threads: usize,
    scalars: &[ScalarRed],
    table: Option<&TableRed>,
    types: &mut Vec<Type>,
) -> Expr {
    let mut fresh = Fresh { types };
    let mut body = body.clone();
    let mut accs: Vec<ParAcc> = Vec::new();
    let mut merge_stmts: Vec<Stmt> = Vec::new();

    // ---- Shape A accumulators -------------------------------------------
    for red in scalars {
        let acc = fresh.sym(red.ty.clone());
        accs.push(ParAcc {
            sym: acc,
            ty: red.ty.clone(),
            var: true,
            init: Block {
                stmts: vec![],
                result: red.init.clone(),
            },
        });
        substitute_sym(&mut body, red.var, acc);
        // merge: v = v OP acc
        let (cur, s1) = fresh.stmt(red.ty.clone(), Expr::ReadVar(red.var));
        let (next, s2) = fresh.stmt(
            red.ty.clone(),
            Expr::Bin(red.op, Atom::Sym(cur), Atom::Sym(acc)),
        );
        let s3 = fresh.unit_stmt(Expr::Assign {
            var: red.var,
            value: Atom::Sym(next),
        });
        merge_stmts.extend([s1, s2, s3]);
    }

    // ---- Shape B cluster -------------------------------------------------
    if let Some(t) = table {
        // Private bucket array.
        let bucket_ty = Type::array(Type::Record(t.psid));
        let (init_sym, init_stmt) = fresh.stmt(bucket_ty.clone(), t.bucket_def.clone());
        let bucket_acc = fresh.sym(bucket_ty.clone());
        accs.push(ParAcc {
            sym: bucket_acc,
            ty: bucket_ty,
            var: false,
            init: Block {
                stmts: vec![init_stmt],
                result: Atom::Sym(init_sym),
            },
        });
        substitute_sym(&mut body, t.bucket, bucket_acc);
        // Private pools.
        for (pool, pool_def) in &t.pools {
            let pool_ty = p.type_of(*pool).clone();
            let (pi, ps) = fresh.stmt(pool_ty.clone(), pool_def.clone());
            let pool_acc = fresh.sym(pool_ty.clone());
            accs.push(ParAcc {
                sym: pool_acc,
                ty: pool_ty,
                var: false,
                init: Block {
                    stmts: vec![ps],
                    result: Atom::Sym(pi),
                },
            });
            substitute_sym(&mut body, *pool, pool_acc);
        }
        merge_stmts.push(table_merge(p, &mut fresh, t, bucket_acc));
    }

    let merge = Block::unit(merge_stmts);
    Expr::ParallelFor {
        lo: lo.clone(),
        hi: hi.clone(),
        var,
        threads,
        accs,
        body,
        merge,
    }
}

/// The Shape B merge: for every slot, walk the worker's private chain and
/// fold each record into the shared table — relink unseen keys, reduce
/// matched groups.
fn table_merge(p: &Program, fresh: &mut Fresh, t: &TableRed, bucket_acc: Sym) -> Stmt {
    let psid = t.psid;
    let prec = Type::Record(psid);
    let null = || Atom::Null(Box::new(prec.clone()));
    let pdef = p.structs.get(psid).clone();
    let nf = t.next_field;

    let slot = fresh.sym(Type::Int);
    let mut slot_body: Vec<Stmt> = Vec::new();

    if !t.keyed {
        // Multimap concatenation: splice each non-empty private chain in
        // front of the shared one (walk to its tail, point the tail at the
        // shared head, install the private head).
        let (h, s_h) = fresh.stmt(
            prec.clone(),
            Expr::ArrayGet {
                arr: Atom::Sym(bucket_acc),
                idx: Atom::Sym(slot),
            },
        );
        slot_body.push(s_h);
        let (hnn, s_hnn) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Ne, Atom::Sym(h), null()));
        slot_body.push(s_hnn);
        let mut then_b: Vec<Stmt> = Vec::new();
        let (tl, s_tl) = fresh.stmt(prec.clone(), Expr::DeclVar { init: Atom::Sym(h) });
        then_b.push(s_tl);
        let mut cond = Vec::new();
        let (tv, s_tv) = fresh.stmt(prec.clone(), Expr::ReadVar(tl));
        cond.push(s_tv);
        let (nx, s_nx) = fresh.stmt(
            prec.clone(),
            Expr::FieldGet {
                obj: Atom::Sym(tv),
                sid: psid,
                field: nf,
            },
        );
        cond.push(s_nx);
        let (nxnn, s_nxnn) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Ne, Atom::Sym(nx), null()));
        cond.push(s_nxnn);
        let mut wbody = Vec::new();
        let (tv2, s_tv2) = fresh.stmt(prec.clone(), Expr::ReadVar(tl));
        wbody.push(s_tv2);
        let (nx2, s_nx2) = fresh.stmt(
            prec.clone(),
            Expr::FieldGet {
                obj: Atom::Sym(tv2),
                sid: psid,
                field: nf,
            },
        );
        wbody.push(s_nx2);
        wbody.push(fresh.unit_stmt(Expr::Assign {
            var: tl,
            value: Atom::Sym(nx2),
        }));
        then_b.push(fresh.unit_stmt(Expr::While {
            cond: Block {
                stmts: cond,
                result: Atom::Sym(nxnn),
            },
            body: Block::unit(wbody),
        }));
        let (tv3, s_tv3) = fresh.stmt(prec.clone(), Expr::ReadVar(tl));
        then_b.push(s_tv3);
        let (sh, s_sh) = fresh.stmt(
            prec.clone(),
            Expr::ArrayGet {
                arr: Atom::Sym(t.bucket),
                idx: Atom::Sym(slot),
            },
        );
        then_b.push(s_sh);
        then_b.push(fresh.unit_stmt(Expr::FieldSet {
            obj: Atom::Sym(tv3),
            sid: psid,
            field: nf,
            value: Atom::Sym(sh),
        }));
        then_b.push(fresh.unit_stmt(Expr::ArraySet {
            arr: Atom::Sym(t.bucket),
            idx: Atom::Sym(slot),
            value: Atom::Sym(h),
        }));
        slot_body.push(fresh.unit_stmt(Expr::If {
            cond: Atom::Sym(hnn),
            then_b: Block::unit(then_b),
            else_b: Block::default(),
        }));
        return fresh.unit_stmt(Expr::ForRange {
            lo: Atom::Int(0),
            hi: t.bucket_len.clone(),
            var: slot,
            body: Block::unit(slot_body),
        });
    }

    // cur = private chain head; walk it.
    let (head, s_head) = fresh.stmt(
        prec.clone(),
        Expr::ArrayGet {
            arr: Atom::Sym(bucket_acc),
            idx: Atom::Sym(slot),
        },
    );
    slot_body.push(s_head);
    let (cur, s_cur) = fresh.stmt(
        prec.clone(),
        Expr::DeclVar {
            init: Atom::Sym(head),
        },
    );
    slot_body.push(s_cur);

    // while (cur != null) { ... }
    let mut cond = Vec::new();
    let (cv, s_cv) = fresh.stmt(prec.clone(), Expr::ReadVar(cur));
    cond.push(s_cv);
    let (cnn, s_cnn) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Ne, Atom::Sym(cv), null()));
    cond.push(s_cnn);
    let cond = Block {
        stmts: cond,
        result: Atom::Sym(cnn),
    };

    let mut w: Vec<Stmt> = Vec::new();
    let (pr, s_pr) = fresh.stmt(prec.clone(), Expr::ReadVar(cur));
    w.push(s_pr);
    // Save the private next pointer *before* any relink clobbers it.
    let (nx, s_nx) = fresh.stmt(
        prec.clone(),
        Expr::FieldGet {
            obj: Atom::Sym(pr),
            sid: psid,
            field: nf,
        },
    );
    w.push(s_nx);

    // m = first shared-chain record with equal keys, else null.
    let (m, s_m) = fresh.stmt(prec.clone(), Expr::DeclVar { init: null() });
    w.push(s_m);
    let (sh, s_sh) = fresh.stmt(
        prec.clone(),
        Expr::ArrayGet {
            arr: Atom::Sym(t.bucket),
            idx: Atom::Sym(slot),
        },
    );
    w.push(s_sh);
    let (walk, s_walk) = fresh.stmt(
        prec.clone(),
        Expr::DeclVar {
            init: Atom::Sym(sh),
        },
    );
    w.push(s_walk);

    // Preload the private record's key atoms (loop-invariant across the
    // shared-chain walk).
    enum KeyCmp {
        Scalar {
            field: usize,
            ty: Type,
            pv: Sym,
        },
        Rec {
            field: usize,
            ksid: StructId,
            pv: Sym,
        },
    }
    let mut keys: Vec<KeyCmp> = Vec::new();
    for (i, f) in pdef.fields.iter().enumerate() {
        if i == nf || t.reduce.contains_key(&(psid, i)) {
            continue;
        }
        match &f.ty {
            Type::Record(ksid) => {
                let inner = p.structs.get(*ksid);
                let is_value_rec =
                    (0..inner.fields.len()).any(|j| t.reduce.contains_key(&(*ksid, j)));
                if is_value_rec {
                    continue;
                }
                let (pv, s) = fresh.stmt(
                    f.ty.clone(),
                    Expr::FieldGet {
                        obj: Atom::Sym(pr),
                        sid: psid,
                        field: i,
                    },
                );
                w.push(s);
                keys.push(KeyCmp::Rec {
                    field: i,
                    ksid: *ksid,
                    pv,
                });
            }
            ty => {
                let (pv, s) = fresh.stmt(
                    ty.clone(),
                    Expr::FieldGet {
                        obj: Atom::Sym(pr),
                        sid: psid,
                        field: i,
                    },
                );
                w.push(s);
                keys.push(KeyCmp::Scalar {
                    field: i,
                    ty: ty.clone(),
                    pv,
                });
            }
        }
    }

    // inner while (walk != null) { if (keys equal) m = walk; walk = walk.next }
    let mut icond = Vec::new();
    let (wv, s_wv) = fresh.stmt(prec.clone(), Expr::ReadVar(walk));
    icond.push(s_wv);
    let (wnn, s_wnn) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Ne, Atom::Sym(wv), null()));
    icond.push(s_wnn);
    let icond = Block {
        stmts: icond,
        result: Atom::Sym(wnn),
    };

    let mut iw: Vec<Stmt> = Vec::new();
    let (wp, s_wp) = fresh.stmt(prec.clone(), Expr::ReadVar(walk));
    iw.push(s_wp);
    // Key equality, AND-folded.
    let mut eq_so_far: Option<Sym> = None;
    let mut push_eq = |fresh: &mut Fresh, iw: &mut Vec<Stmt>, ty: &Type, a: Sym, b: Sym| {
        let e = if *ty == Type::String {
            let (e, s) = fresh.stmt(
                Type::Bool,
                Expr::Prim(PrimOp::StrEq, vec![Atom::Sym(a), Atom::Sym(b)]),
            );
            iw.push(s);
            e
        } else {
            let (e, s) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Eq, Atom::Sym(a), Atom::Sym(b)));
            iw.push(s);
            e
        };
        eq_so_far = Some(match eq_so_far {
            None => e,
            Some(prev) => {
                let (c, s) = fresh.stmt(
                    Type::Bool,
                    Expr::Bin(BinOp::BitAnd, Atom::Sym(prev), Atom::Sym(e)),
                );
                iw.push(s);
                c
            }
        });
    };
    for k in &keys {
        match k {
            KeyCmp::Scalar { field, ty, pv } => {
                let (sv, s) = fresh.stmt(
                    ty.clone(),
                    Expr::FieldGet {
                        obj: Atom::Sym(wp),
                        sid: psid,
                        field: *field,
                    },
                );
                iw.push(s);
                push_eq(fresh, &mut iw, ty, *pv, sv);
            }
            KeyCmp::Rec { field, ksid, pv } => {
                let (sv, s) = fresh.stmt(
                    Type::Record(*ksid),
                    Expr::FieldGet {
                        obj: Atom::Sym(wp),
                        sid: psid,
                        field: *field,
                    },
                );
                iw.push(s);
                let inner = p.structs.get(*ksid).clone();
                for (j, kf) in inner.fields.iter().enumerate() {
                    let (pa, s1) = fresh.stmt(
                        kf.ty.clone(),
                        Expr::FieldGet {
                            obj: Atom::Sym(*pv),
                            sid: *ksid,
                            field: j,
                        },
                    );
                    iw.push(s1);
                    let (sa, s2) = fresh.stmt(
                        kf.ty.clone(),
                        Expr::FieldGet {
                            obj: Atom::Sym(sv),
                            sid: *ksid,
                            field: j,
                        },
                    );
                    iw.push(s2);
                    push_eq(fresh, &mut iw, &kf.ty, pa, sa);
                }
            }
        }
    }
    if let Some(eq) = eq_so_far {
        let then_b = Block::unit(vec![fresh.unit_stmt(Expr::Assign {
            var: m,
            value: Atom::Sym(wp),
        })]);
        iw.push(fresh.unit_stmt(Expr::If {
            cond: Atom::Sym(eq),
            then_b,
            else_b: Block::default(),
        }));
    } else {
        // No key fields at all: every record "matches" the chain head —
        // degenerate but well-defined (single-group tables).
        iw.push(fresh.unit_stmt(Expr::Assign {
            var: m,
            value: Atom::Sym(wp),
        }));
    }
    let (wn, s_wn) = fresh.stmt(
        prec.clone(),
        Expr::FieldGet {
            obj: Atom::Sym(wp),
            sid: psid,
            field: nf,
        },
    );
    iw.push(s_wn);
    iw.push(fresh.unit_stmt(Expr::Assign {
        var: walk,
        value: Atom::Sym(wn),
    }));
    w.push(fresh.unit_stmt(Expr::While {
        cond: icond,
        body: Block::unit(iw),
    }));

    // if (m == null) relink else fold.
    let (mv, s_mv) = fresh.stmt(prec.clone(), Expr::ReadVar(m));
    w.push(s_mv);
    let (miss, s_miss) = fresh.stmt(Type::Bool, Expr::Bin(BinOp::Eq, Atom::Sym(mv), null()));
    w.push(s_miss);

    // then: pr.next = shared head; shared[slot] = pr
    let mut then_b: Vec<Stmt> = Vec::new();
    let (h2, s_h2) = fresh.stmt(
        prec.clone(),
        Expr::ArrayGet {
            arr: Atom::Sym(t.bucket),
            idx: Atom::Sym(slot),
        },
    );
    then_b.push(s_h2);
    then_b.push(fresh.unit_stmt(Expr::FieldSet {
        obj: Atom::Sym(pr),
        sid: psid,
        field: nf,
        value: Atom::Sym(h2),
    }));
    then_b.push(fresh.unit_stmt(Expr::ArraySet {
        arr: Atom::Sym(t.bucket),
        idx: Atom::Sym(slot),
        value: Atom::Sym(pr),
    }));

    // else: fold every reduce field of pr into m.
    let mut else_b: Vec<Stmt> = Vec::new();
    // Inline reduce fields on the chain record itself.
    for (i, f) in pdef.fields.iter().enumerate() {
        if let Some(op) = t.reduce.get(&(psid, i)) {
            fold_field(fresh, &mut else_b, mv, pr, psid, i, &f.ty, *op);
        }
    }
    // Reduce fields inside value records.
    for (i, f) in pdef.fields.iter().enumerate() {
        let Type::Record(vsid) = &f.ty else { continue };
        let inner = p.structs.get(*vsid).clone();
        let folds: Vec<(usize, Type, BinOp)> = inner
            .fields
            .iter()
            .enumerate()
            .filter_map(|(j, vf)| t.reduce.get(&(*vsid, j)).map(|op| (j, vf.ty.clone(), *op)))
            .collect();
        if folds.is_empty() {
            continue;
        }
        let (sv, s1) = fresh.stmt(
            f.ty.clone(),
            Expr::FieldGet {
                obj: Atom::Sym(mv),
                sid: psid,
                field: i,
            },
        );
        else_b.push(s1);
        let (pv, s2) = fresh.stmt(
            f.ty.clone(),
            Expr::FieldGet {
                obj: Atom::Sym(pr),
                sid: psid,
                field: i,
            },
        );
        else_b.push(s2);
        for (j, vt, op) in folds {
            fold_field(fresh, &mut else_b, sv, pv, *vsid, j, &vt, op);
        }
    }

    w.push(fresh.unit_stmt(Expr::If {
        cond: Atom::Sym(miss),
        then_b: Block::unit(then_b),
        else_b: Block::unit(else_b),
    }));
    w.push(fresh.unit_stmt(Expr::Assign {
        var: cur,
        value: Atom::Sym(nx),
    }));

    slot_body.push(fresh.unit_stmt(Expr::While {
        cond,
        body: Block::unit(w),
    }));

    fresh.unit_stmt(Expr::ForRange {
        lo: Atom::Int(0),
        hi: t.bucket_len.clone(),
        var: slot,
        body: Block::unit(slot_body),
    })
}

/// `into.f = into.f OP from.f`
#[allow(clippy::too_many_arguments)]
fn fold_field(
    fresh: &mut Fresh,
    out: &mut Vec<Stmt>,
    into: Sym,
    from: Sym,
    sid: StructId,
    field: usize,
    ty: &Type,
    op: BinOp,
) {
    let (a, s1) = fresh.stmt(
        ty.clone(),
        Expr::FieldGet {
            obj: Atom::Sym(into),
            sid,
            field,
        },
    );
    out.push(s1);
    let (b, s2) = fresh.stmt(
        ty.clone(),
        Expr::FieldGet {
            obj: Atom::Sym(from),
            sid,
            field,
        },
    );
    out.push(s2);
    let (c, s3) = fresh.stmt(ty.clone(), Expr::Bin(op, Atom::Sym(a), Atom::Sym(b)));
    out.push(s3);
    out.push(fresh.unit_stmt(Expr::FieldSet {
        obj: Atom::Sym(into),
        sid,
        field,
        value: Atom::Sym(c),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::hash::program_hash;
    use dblab_ir::{IrBuilder, Level};

    /// `var acc = 0.0; for (i <- 0 until arr.length) acc = acc + arr(i)`
    /// — the minimal Shape A loop.
    fn sum_loop() -> Program {
        let mut b = IrBuilder::new();
        let arr = b.array_new(Type::Double, Atom::Int(64));
        let acc = b.decl_var(Atom::double(0.0));
        let n = b.array_len(arr.clone());
        b.for_range(Atom::Int(0), n, |bb, i| {
            let v = bb.array_get(arr.clone(), i);
            let g = bb.read_var(acc);
            let s = bb.add(g, v);
            bb.assign(acc, s);
        });
        let r = b.read_var(acc);
        b.finish(r, Level::CScala)
    }

    fn top_level_parallel_for(p: &Program) -> Option<&Expr> {
        p.body
            .stmts
            .iter()
            .map(|st| &st.expr)
            .find(|e| matches!(e, Expr::ParallelFor { .. }))
    }

    #[test]
    fn scalar_sum_becomes_a_parallel_for() {
        let p = sum_loop();
        let q = apply(&p, 4);
        match top_level_parallel_for(&q) {
            Some(Expr::ParallelFor {
                threads,
                accs,
                merge,
                ..
            }) => {
                assert_eq!(*threads, 4);
                assert_eq!(accs.len(), 1, "one private accumulator");
                assert!(accs[0].var, "Shape A privatizes a mutable var");
                // The merge folds the worker copy back with the same op.
                assert!(merge
                    .stmts
                    .iter()
                    .any(|st| matches!(st.expr, Expr::Bin(BinOp::Add, _, _))));
            }
            other => panic!("expected a top-level ParallelFor, got {other:?}"),
        }
        assert!(
            !p.body
                .stmts
                .iter()
                .any(|st| matches!(st.expr, Expr::ParallelFor { .. })),
            "input must be untouched"
        );
    }

    #[test]
    fn threads_one_is_the_identity() {
        let p = sum_loop();
        let q = apply(&p, 1);
        assert_eq!(program_hash(&p), program_hash(&q));
    }

    /// `acc = arr(i)` is a plain overwrite, not a reduction — the loop
    /// must stay serial (order-dependent final value).
    #[test]
    fn non_reduction_assignment_stays_serial() {
        let mut b = IrBuilder::new();
        let arr = b.array_new(Type::Double, Atom::Int(64));
        let acc = b.decl_var(Atom::double(0.0));
        let n = b.array_len(arr.clone());
        b.for_range(Atom::Int(0), n, |bb, i| {
            let v = bb.array_get(arr.clone(), i);
            bb.assign(acc, v);
        });
        let r = b.read_var(acc);
        let p = b.finish(r, Level::CScala);
        let q = apply(&p, 4);
        assert_eq!(program_hash(&p), program_hash(&q));
    }

    /// Printing inside the loop is I/O in loop order — an immediate veto.
    #[test]
    fn printf_in_the_body_vetoes() {
        let mut b = IrBuilder::new();
        let arr = b.array_new(Type::Double, Atom::Int(64));
        let acc = b.decl_var(Atom::double(0.0));
        let n = b.array_len(arr.clone());
        b.for_range(Atom::Int(0), n, |bb, i| {
            let v = bb.array_get(arr.clone(), i);
            bb.printf("%f\n", vec![v.clone()]);
            let g = bb.read_var(acc);
            let s = bb.add(g, v);
            bb.assign(acc, s);
        });
        let r = b.read_var(acc);
        let p = b.finish(r, Level::CScala);
        let q = apply(&p, 4);
        assert_eq!(program_hash(&p), program_hash(&q));
    }

    /// A fixed-trip loop (`for (i <- 0 until 64)`) is not a data scan;
    /// the pass only fires on `ArrayLen`-bounded loops.
    #[test]
    fn fixed_trip_loops_stay_serial() {
        let mut b = IrBuilder::new();
        let acc = b.decl_var(Atom::Int(0));
        b.for_range(Atom::Int(0), Atom::Int(64), |bb, i| {
            let g = bb.read_var(acc);
            let s = bb.add(g, i);
            bb.assign(acc, s);
        });
        let r = b.read_var(acc);
        let p = b.finish(r, Level::CScala);
        let q = apply(&p, 4);
        assert_eq!(program_hash(&p), program_hash(&q));
    }
}
