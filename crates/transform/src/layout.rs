//! Storage-layout specialization (Appendix C, Figure 3).
//!
//! Base-table arrays can be represented as (a) boxed — an array of pointers
//! to separately allocated records, (b) row — a contiguous array of
//! records, or (c) columnar — one array per field, "which often has a
//! positive impact on cache locality". The decision is recorded as a
//! [`Layout`] annotation on the `LoadTable` symbol during pipelining and
//! honoured by the C unparser, which emits the corresponding loader and
//! rewrites `table[i].field` access chains per layout.

pub use dblab_ir::expr::Layout;

use crate::config::StackConfig;

/// The layout decision for base tables under a configuration: the naïve
/// two-level stack pays for boxed rows (one allocation per tuple, like the
/// generic GLib path); three levels and up use the columnar representation.
pub fn table_layout(cfg: &StackConfig) -> Layout {
    if cfg.columnar_layout {
        Layout::Columnar
    } else {
        Layout::Boxed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level2_boxes_level3_goes_columnar() {
        assert_eq!(table_layout(&StackConfig::level2()), Layout::Boxed);
        assert_eq!(table_layout(&StackConfig::level3()), Layout::Columnar);
        assert_eq!(table_layout(&StackConfig::level5()), Layout::Columnar);
    }
}
