//! Horizontal loop fusion (paper §7.3, footnote 12).
//!
//! Shortcut fusion only gives *vertical* fusion (producer into consumer).
//! When two loops iterate the same range — the classic case being several
//! independent folds over one source produced by the naïve QMonad lowering
//! — they can be merged into one traversal, provided their bodies'
//! effects commute. This is a sibling-statement optimization, so it is a
//! dedicated pass over blocks rather than a per-statement rewrite rule.

use std::collections::HashSet;

use dblab_ir::expr::{Block, Expr, Program, Stmt};
use dblab_ir::opt::map_blocks;

/// Fuse mergeable adjacent loops everywhere in the program; runs bottom-up
/// and to fixpoint within each block.
pub fn apply(p: &Program) -> Program {
    let mut p = p.clone();
    p.body = fuse_block(&p.body);
    p
}

fn fuse_block(b: &Block) -> Block {
    // Recurse first.
    let mut stmts: Vec<Stmt> = b
        .stmts
        .iter()
        .map(|st| {
            let mut st = st.clone();
            st.expr = map_blocks(&st.expr, fuse_block);
            st
        })
        .collect();

    let mut i = 0;
    while i + 1 < stmts.len() {
        if let Some(merged) = try_fuse(&stmts[i], &stmts[i + 1]) {
            stmts[i] = merged;
            stmts.remove(i + 1);
            // Stay at i: the merged loop may fuse with the next one too.
        } else {
            i += 1;
        }
    }
    Block {
        stmts,
        result: b.result.clone(),
    }
}

fn try_fuse(a: &Stmt, b: &Stmt) -> Option<Stmt> {
    match (&a.expr, &b.expr) {
        (
            Expr::ForRange {
                lo: lo1,
                hi: hi1,
                var: v1,
                body: b1,
            },
            Expr::ForRange {
                lo: lo2,
                hi: hi2,
                var: v2,
                body: b2,
            },
        ) if lo1 == lo2 && hi1 == hi2 => {
            // Bodies must commute: neither may write state the other reads
            // or writes. Mutable variables are tracked individually; all
            // heap-resident state is one conservative region.
            if !bodies_commute(b1, b2) {
                return None;
            }
            // The second body must not depend on symbols defined by the
            // first loop (they are out of scope after merging reorders).
            let mut body = b1.clone();
            let mut b2 = b2.clone();
            substitute_sym(&mut b2, *v2, *v1);
            body.stmts.extend(b2.stmts);
            Some(Stmt {
                sym: a.sym,
                ty: a.ty.clone(),
                expr: Expr::ForRange {
                    lo: lo1.clone(),
                    hi: hi1.clone(),
                    var: *v1,
                    body,
                },
            })
        }
        _ => None,
    }
}

/// Per-target read/write footprint of a block: individual mutable
/// variables, plus a single conservative "heap" region for everything
/// reached through arrays, records and collections.
#[derive(Default)]
struct Footprint {
    reads: HashSet<Option<dblab_ir::Sym>>,
    writes: HashSet<Option<dblab_ir::Sym>>,
    io: bool,
}

const HEAP: Option<dblab_ir::Sym> = None;

fn footprint(b: &Block, fp: &mut Footprint) {
    for st in &b.stmts {
        match &st.expr {
            Expr::ReadVar(v) => {
                fp.reads.insert(Some(*v));
            }
            Expr::Assign { var, .. } => {
                fp.writes.insert(Some(*var));
            }
            Expr::FieldGet { .. }
            | Expr::ArrayGet { .. }
            | Expr::ArrayLen(_)
            | Expr::ListSize(_)
            | Expr::HashMapSize(_)
            | Expr::ListForeach { .. }
            | Expr::HashMapForeach { .. }
            | Expr::MultiMapForeachAt { .. } => {
                fp.reads.insert(HEAP);
            }
            Expr::FieldSet { .. }
            | Expr::ArraySet { .. }
            | Expr::ListAppend { .. }
            | Expr::MultiMapAdd { .. }
            | Expr::HashMapGetOrInit { .. }
            | Expr::SortArray { .. }
            | Expr::Free(_) => {
                fp.writes.insert(HEAP);
            }
            Expr::Printf { .. }
            | Expr::Prim(dblab_ir::expr::PrimOp::TimerStart, _)
            | Expr::Prim(dblab_ir::expr::PrimOp::TimerStop, _)
            | Expr::Prim(dblab_ir::expr::PrimOp::PrintRusage, _)
            | Expr::LoadTable { .. }
            | Expr::LoadIndexUnique { .. }
            | Expr::LoadIndexStarts { .. }
            | Expr::LoadIndexItems { .. } => fp.io = true,
            _ => {}
        }
        for blk in st.expr.blocks() {
            footprint(blk, fp);
        }
    }
}

fn bodies_commute(a: &Block, b: &Block) -> bool {
    let mut fa = Footprint::default();
    let mut fb = Footprint::default();
    footprint(a, &mut fa);
    footprint(b, &mut fb);
    if fa.io || fb.io {
        return false;
    }
    let conflict = |w: &HashSet<Option<dblab_ir::Sym>>, other: &Footprint| {
        w.iter()
            .any(|t| other.reads.contains(t) || other.writes.contains(t))
    };
    !conflict(&fa.writes, &fb) && !conflict(&fb.writes, &fa)
}

/// Replace every use of `from` with `to` inside a block (also used by the
/// parallelize-scans pass to redirect loop bodies onto privatized state).
pub(crate) fn substitute_sym(b: &mut Block, from: dblab_ir::Sym, to: dblab_ir::Sym) {
    use dblab_ir::expr::Atom;
    fn subst_atom(a: &mut Atom, from: dblab_ir::Sym, to: dblab_ir::Sym) {
        if let Atom::Sym(s) = a {
            if *s == from {
                *s = to;
            }
        }
    }
    fn subst_expr(e: &mut Expr, from: dblab_ir::Sym, to: dblab_ir::Sym) {
        for_each_atom_mut(e, &mut |a| subst_atom(a, from, to));
        match e {
            Expr::ReadVar(v) | Expr::Assign { var: v, .. } if *v == from => {
                *v = to;
            }
            _ => {}
        }
        for blk in blocks_mut(e) {
            subst_block(blk, from, to);
        }
    }
    fn subst_block(b: &mut Block, from: dblab_ir::Sym, to: dblab_ir::Sym) {
        for st in &mut b.stmts {
            subst_expr(&mut st.expr, from, to);
        }
        subst_atom(&mut b.result, from, to);
    }
    subst_block(b, from, to);
}

/// Apply a mutation to each operand atom of an expression (not descending
/// into blocks).
fn for_each_atom_mut(e: &mut Expr, f: &mut dyn FnMut(&mut dblab_ir::expr::Atom)) {
    use Expr::*;
    match e {
        Atom(a) | Un(_, a) | ArrayLen(a) | Free(a) | ListSize(a) | HashMapSize(a) => f(a),
        Bin(_, a, b) => {
            f(a);
            f(b);
        }
        Prim(_, args) | StructNew { args, .. } | Printf { args, .. } => args.iter_mut().for_each(f),
        Dict { arg, .. } => f(arg),
        If { cond, .. } => f(cond),
        ForRange { lo, hi, .. } => {
            f(lo);
            f(hi);
        }
        While { .. } => {}
        DeclVar { init } => f(init),
        ReadVar(_) => {}
        Assign { value, .. } => f(value),
        FieldGet { obj, .. } => f(obj),
        FieldSet { obj, value, .. } => {
            f(obj);
            f(value);
        }
        ArrayNew { len, .. } => f(len),
        ArrayGet { arr, idx } => {
            f(arr);
            f(idx);
        }
        ArraySet { arr, idx, value } => {
            f(arr);
            f(idx);
            f(value);
        }
        SortArray { arr, len, .. } => {
            f(arr);
            f(len);
        }
        ListNew { .. } | HashMapNew { .. } | MultiMapNew { .. } => {}
        ListAppend { list, value } => {
            f(list);
            f(value);
        }
        ListForeach { list, .. } => f(list),
        HashMapGetOrInit { map, key, .. } => {
            f(map);
            f(key);
        }
        HashMapForeach { map, .. } => f(map),
        MultiMapAdd { map, key, value } => {
            f(map);
            f(key);
            f(value);
        }
        MultiMapForeachAt { map, key, .. } => {
            f(map);
            f(key);
        }
        Malloc { count, .. } => f(count),
        PoolNew { cap, .. } => f(cap),
        PoolAlloc { pool } => f(pool),
        LoadTable { .. }
        | LoadIndexUnique { .. }
        | LoadIndexStarts { .. }
        | LoadIndexItems { .. } => {}
        ParallelFor { lo, hi, .. } => {
            f(lo);
            f(hi);
        }
        LoadParam { .. } => {}
    }
}

/// Mutable access to an expression's sub-blocks.
fn blocks_mut(e: &mut Expr) -> Vec<&mut Block> {
    match e {
        Expr::If { then_b, else_b, .. } => vec![then_b, else_b],
        Expr::ForRange { body, .. }
        | Expr::ListForeach { body, .. }
        | Expr::HashMapForeach { body, .. }
        | Expr::MultiMapForeachAt { body, .. } => vec![body],
        Expr::While { cond, body } => vec![cond, body],
        Expr::SortArray { cmp, .. } => vec![cmp],
        Expr::HashMapGetOrInit { init, .. } => vec![init],
        Expr::ParallelFor {
            accs, body, merge, ..
        } => {
            let mut bs: Vec<&mut Block> = accs.iter_mut().map(|a| &mut a.init).collect();
            bs.push(body);
            bs.push(merge);
            bs
        }
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::expr::Atom;
    use dblab_ir::{IrBuilder, Level};

    #[test]
    fn independent_folds_over_same_range_fuse() {
        let mut b = IrBuilder::new();
        let s1 = b.decl_var(Atom::Long(0));
        let s2 = b.decl_var(Atom::Long(0));
        b.for_range(Atom::Int(0), Atom::Int(100), |bb, i| {
            let cur = bb.read_var(s1);
            let n = bb.add(cur, i);
            bb.assign(s1, n);
        });
        b.for_range(Atom::Int(0), Atom::Int(100), |bb, i| {
            let cur = bb.read_var(s2);
            let n = bb.add(cur, i);
            bb.assign(s2, n);
        });
        let r1 = b.read_var(s1);
        let p = b.finish(r1, Level::MapList);
        let loops_before = count_loops(&p.body);
        assert_eq!(loops_before, 2);
        let q = apply(&p);
        assert_eq!(count_loops(&q.body), 1, "loops fused");
    }

    #[test]
    fn conflicting_loops_do_not_fuse() {
        let mut b = IrBuilder::new();
        let v = b.decl_var(Atom::Long(0));
        b.for_range(Atom::Int(0), Atom::Int(10), |bb, i| {
            bb.assign(v, i);
        });
        // Second loop reads what the first writes: order matters.
        let out = b.decl_var(Atom::Long(0));
        b.for_range(Atom::Int(0), Atom::Int(10), |bb, _i| {
            let x = bb.read_var(v);
            bb.assign(out, x);
        });
        let r = b.read_var(out);
        let p = b.finish(r, Level::MapList);
        let q = apply(&p);
        assert_eq!(count_loops(&q.body), 2, "must not fuse");
    }

    #[test]
    fn different_ranges_do_not_fuse() {
        let mut b = IrBuilder::new();
        let v = b.decl_var(Atom::Long(0));
        let w = b.decl_var(Atom::Long(0));
        b.for_range(Atom::Int(0), Atom::Int(10), |bb, i| {
            let c = bb.read_var(v);
            let n = bb.add(c, i);
            bb.assign(v, n);
        });
        b.for_range(Atom::Int(0), Atom::Int(20), |bb, i| {
            let c = bb.read_var(w);
            let n = bb.add(c, i);
            bb.assign(w, n);
        });
        let r = b.read_var(v);
        let p = b.finish(r, Level::MapList);
        assert_eq!(count_loops(&apply(&p).body), 2);
    }

    fn count_loops(b: &Block) -> usize {
        b.stmts
            .iter()
            .filter(|st| matches!(st.expr, Expr::ForRange { .. }))
            .count()
    }
}
