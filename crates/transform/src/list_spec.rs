//! List specialization: the lowering from ScaLite\[List\] to ScaLite
//! (§4.4).
//!
//! Two context-dependent strategies, exactly as the paper motivates:
//!
//! * **Intrusive linked lists** for hash-table buckets: the record type
//!   gains a `next` field, the bucket array stores head references, and
//!   insertion is a head push (Figure 4f) — "this removes one level of
//!   indirection caused by the separate allocations of the container nodes
//!   and the records";
//! * **Static arrays** for lists whose worst-case size is known from the
//!   bounded-loop analysis (the `SizeHint` annotation): a pre-sized
//!   `Array[T]` plus a count variable — "we benefit from the existing array
//!   layout optimizations provided for ScaLite down the DSL stack".

use std::collections::{HashMap, HashSet};

use dblab_ir::expr::{Atom, Block, Expr, Sym};
use dblab_ir::rewrite::{run_rule, Rewriter, Rule};
use dblab_ir::types::StructId;
use dblab_ir::{FieldDef, IrBuilder, Level, Program, Type};

#[derive(Default)]
struct ListSpec {
    /// Record sids that received a `next` field, with its index.
    next_field: HashMap<StructId, usize>,
    /// Old symbols of bucket arrays (`Array[List[Rec]]`).
    bucket_arrays: HashSet<Sym>,
    /// Old symbols of `ListNew`s that initialize buckets (become nulls).
    bucket_lists: HashSet<Sym>,
    /// Old `ArrayGet` symbols over bucket arrays: (array sym, index atom).
    bucket_gets: HashMap<Sym, (Sym, Atom)>,
    /// Plain lists: old sym -> (new array atom, count var, elem type).
    plain: HashMap<Sym, (Atom, Sym)>,
    /// Size hints of plain lists (from the old program's annotations).
    hints: HashMap<Sym, u64>,
}

/// Apply list specialization; the result is a plain ScaLite program.
pub fn apply(p: &Program) -> Program {
    let mut rule = ListSpec::default();
    // Analysis: classify lists before rewriting.
    classify(&p.body, &mut rule, p);
    run_rule(p, &mut rule, Level::ScaLite)
}

fn classify(b: &Block, st: &mut ListSpec, p: &Program) {
    for s in &b.stmts {
        match &s.expr {
            Expr::ArrayNew {
                elem: Type::List(inner),
                ..
            } => {
                if matches!(**inner, Type::Record(_)) {
                    st.bucket_arrays.insert(s.sym);
                }
            }
            Expr::ArraySet { arr, value, .. } => {
                if let (Atom::Sym(a), Atom::Sym(v)) = (arr, value) {
                    if st.bucket_arrays.contains(a) {
                        st.bucket_lists.insert(*v);
                    }
                }
            }
            Expr::ArrayGet {
                arr: Atom::Sym(a),
                idx,
            } if st.bucket_arrays.contains(a) => {
                st.bucket_gets.insert(s.sym, (*a, idx.clone()));
            }
            Expr::ListNew { .. } => {
                if let Some(h) = p.annots.size_hint(s.sym) {
                    st.hints.insert(s.sym, h);
                }
            }
            _ => {}
        }
        for blk in s.expr.blocks() {
            classify(blk, st, p);
        }
    }
}

impl ListSpec {
    fn ensure_next_field(&mut self, b: &mut IrBuilder, sid: StructId) -> usize {
        if let Some(i) = self.next_field.get(&sid) {
            return *i;
        }
        let def = b.structs.get_mut(sid);
        def.fields.push(FieldDef {
            name: "next".into(),
            ty: Type::Record(sid),
        });
        let idx = def.fields.len() - 1;
        self.next_field.insert(sid, idx);
        idx
    }
}

impl Rule for ListSpec {
    fn name(&self) -> &'static str {
        "list-specialization"
    }

    fn apply(&mut self, rw: &mut Rewriter<'_>, sym: Sym, _ty: &Type, e: &Expr) -> Option<Atom> {
        match e {
            // Bucket arrays become head-reference arrays (null-initialised).
            Expr::ArrayNew {
                elem: Type::List(inner),
                len,
            } if self.bucket_arrays.contains(&sym) => {
                let sid = match &**inner {
                    Type::Record(s) => *s,
                    other => panic!("bucket of {other}"),
                };
                self.ensure_next_field(&mut rw.b, sid);
                let len = rw.atom(len);
                Some(rw.b.array_new(Type::Record(sid), len))
            }
            // Bucket initialisation disappears: heads start null.
            Expr::ListNew { elem } => {
                if self.bucket_lists.contains(&sym) {
                    return Some(Atom::Null(Box::new(elem.clone())));
                }
                // Static-array strategy for hinted plain lists.
                let hint = self.hints.get(&sym).copied()?;
                let arr = rw.b.array_new(elem.clone(), Atom::Int(hint.max(1) as i64));
                let cnt = rw.b.decl_var(Atom::Int(0));
                self.plain.insert(sym, (arr.clone(), cnt));
                Some(arr)
            }
            Expr::ArraySet { arr, value, .. } => {
                if let (Atom::Sym(a), Atom::Sym(v)) = (arr, value) {
                    if self.bucket_arrays.contains(a) && self.bucket_lists.contains(v) {
                        return Some(Atom::Unit);
                    }
                }
                None
            }
            Expr::ListAppend { list, value } => {
                let ls = list.as_sym().expect("list atom");
                if let Some((arr_sym, idx)) = self.bucket_gets.get(&ls).cloned() {
                    // Intrusive head insertion (Figure 4f):
                    //   value.next = heads[idx]; heads[idx] = value
                    let heads = rw.atom(&Atom::Sym(arr_sym));
                    let idx = rw.atom(&idx);
                    let v = rw.atom(value);
                    let sid = match rw.b.atom_type(&v) {
                        Type::Record(s) => s,
                        other => panic!("intrusive element of type {other}"),
                    };
                    let nf = self.ensure_next_field(&mut rw.b, sid);
                    let old_head = rw.b.array_get(heads.clone(), idx.clone());
                    rw.b.field_set(v.clone(), sid, nf, old_head);
                    rw.b.array_set(heads, idx, v);
                    return Some(Atom::Unit);
                }
                if let Some((arr, cnt)) = self.plain.get(&ls).cloned() {
                    let v = rw.atom(value);
                    let i = rw.b.read_var(cnt);
                    rw.b.array_set(arr, i.clone(), v);
                    let i1 = rw.b.add(i, Atom::Int(1));
                    rw.b.assign(cnt, i1);
                    return Some(Atom::Unit);
                }
                panic!("ListAppend on unclassified list {ls}")
            }
            Expr::ListSize(l) => {
                let ls = l.as_sym().expect("list atom");
                let (_, cnt) = self
                    .plain
                    .get(&ls)
                    .cloned()
                    .expect("ListSize on non-static list");
                Some(rw.b.read_var(cnt))
            }
            Expr::ListForeach { list, var, body } => {
                let ls = list.as_sym().expect("list atom");
                if let Some((arr_sym, idx)) = self.bucket_gets.get(&ls).cloned() {
                    // Intrusive traversal:
                    //   var r = heads[idx]; while (r != null) { …; r = r.next }
                    let heads = rw.atom(&Atom::Sym(arr_sym));
                    let idx = rw.atom(&idx);
                    let head = rw.b.array_get(heads, idx);
                    let sid = match rw.b.atom_type(&head) {
                        Type::Record(s) => s,
                        other => panic!("intrusive element of type {other}"),
                    };
                    let nf = self.ensure_next_field(&mut rw.b, sid);
                    let cur = rw.b.decl_var(head);
                    // cond block: read cur != null
                    rw.b.scope_push();
                    let c = rw.b.read_var(cur);
                    let nonnull = rw.b.ne(c, Atom::Null(Box::new(Type::Record(sid))));
                    let cond = rw.b.scope_pop(nonnull);
                    // body block
                    rw.b.scope_push();
                    let r = rw.b.read_var(cur);
                    rw.map(*var, r.clone());
                    rw.block_inline(self, body);
                    let nxt = rw.b.field_get(r, sid, nf);
                    rw.b.assign(cur, nxt);
                    let wbody = rw.b.scope_pop(Atom::Unit);
                    rw.b.emit_unit(Expr::While { cond, body: wbody });
                    return Some(Atom::Unit);
                }
                if let Some((arr, cnt)) = self.plain.get(&ls).cloned() {
                    let n = rw.b.read_var(cnt);
                    let ivar = rw.b.bind(Type::Int);
                    rw.b.scope_push();
                    let v = rw.b.array_get(arr, Atom::Sym(ivar));
                    rw.map(*var, v);
                    rw.block_inline(self, body);
                    let fbody = rw.b.scope_pop(Atom::Unit);
                    rw.b.emit_unit(Expr::ForRange {
                        lo: Atom::Int(0),
                        hi: n,
                        var: ivar,
                        body: fbody,
                    });
                    return Some(Atom::Unit);
                }
                panic!("ListForeach on unclassified list {ls}")
            }
            // Records whose type gained a `next` field: extend construction
            // with a null tail.
            Expr::StructNew { sid, args } => {
                let nf = *self.next_field.get(sid)?;
                let mut args: Vec<Atom> = args.iter().map(|a| rw.atom(a)).collect();
                debug_assert_eq!(args.len(), nf);
                args.push(Atom::Null(Box::new(Type::Record(*sid))));
                Some(rw.b.struct_new(*sid, args))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::expr::Annot;

    fn has_node(p: &Program, pred: fn(&Expr) -> bool) -> bool {
        fn walk(b: &Block, pred: fn(&Expr) -> bool) -> bool {
            b.stmts
                .iter()
                .any(|st| pred(&st.expr) || st.expr.blocks().iter().any(|blk| walk(blk, pred)))
        }
        walk(&p.body, pred)
    }

    #[test]
    fn hinted_list_becomes_static_array() {
        let mut b = IrBuilder::new();
        let l = b.list_new(Type::Int);
        if let Atom::Sym(s) = l {
            b.annotate(s, Annot::SizeHint(64));
        }
        b.list_append(l.clone(), Atom::Int(1));
        b.list_append(l.clone(), Atom::Int(2));
        let n = b.list_size(l.clone());
        let total = b.decl_var(Atom::Int(0));
        b.list_foreach(l, |bb, v| {
            let c = bb.read_var(total);
            let s = bb.add(c, v);
            bb.assign(total, s);
        });
        b.printf("%d %d\n", vec![n, Atom::Sym(total)]);
        let p = b.finish(Atom::Unit, Level::List);

        let q = apply(&p);
        assert!(!has_node(&q, |e| matches!(e, Expr::ListNew { .. })));
        assert!(!has_node(&q, |e| matches!(e, Expr::ListForeach { .. })));
        assert!(has_node(&q, |e| matches!(e, Expr::ArrayNew { .. })));
        let violations = dblab_ir::level::validate(&q);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(q.level, Level::ScaLite);
    }

    #[test]
    fn bucket_lists_become_intrusive() {
        // The shape hash_spec emits: Array[List[Pair]] with per-slot
        // ListNew, ArrayGet+Append inserts and ArrayGet+Foreach probes.
        let mut b = IrBuilder::new();
        let sid = b.structs.register(dblab_ir::StructDef {
            name: "Pair".into(),
            fields: vec![
                FieldDef {
                    name: "key".into(),
                    ty: Type::Int,
                },
                FieldDef {
                    name: "value".into(),
                    ty: Type::Int,
                },
            ],
        });
        let arr = b.array_new(Type::list(Type::Record(sid)), Atom::Int(4));
        b.for_range(Atom::Int(0), Atom::Int(4), |bb, i| {
            let l = bb.list_new(Type::Record(sid));
            bb.array_set(arr.clone(), i, l);
        });
        // insert
        let pair = b.struct_new(sid, vec![Atom::Int(1), Atom::Int(10)]);
        let l = b.array_get(arr.clone(), Atom::Int(1));
        b.list_append(l, pair);
        // probe
        let l2 = b.array_get(arr.clone(), Atom::Int(1));
        let total = b.decl_var(Atom::Int(0));
        b.list_foreach(l2, |bb, pv| {
            let v = bb.field_get(pv, sid, 1);
            let c = bb.read_var(total);
            let s = bb.add(c, v);
            bb.assign(total, s);
        });
        let out = b.read_var(total);
        b.printf("%d\n", vec![out]);
        let p = b.finish(Atom::Unit, Level::List);

        let q = apply(&p);
        assert!(!has_node(&q, |e| matches!(e, Expr::ListNew { .. })));
        assert!(!has_node(&q, |e| matches!(e, Expr::ListAppend { .. })));
        assert!(
            has_node(&q, |e| matches!(e, Expr::While { .. })),
            "intrusive traversal"
        );
        // Pair gained a next field.
        let pair_def = q.structs.get(sid);
        assert_eq!(&*pair_def.fields.last().unwrap().name, "next");
        let violations = dblab_ir::level::validate(&q);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
