//! Unused-struct-field removal (Appendix C).
//!
//! Fields never read anywhere in the program are removed from their record
//! definitions; writes to them disappear, and — for base tables — the
//! generated loader "avoids loading into memory the values for the
//! unnecessary fields". Because field *indices* shift, this is a dedicated
//! renumbering pass rather than a rewrite rule. The original column
//! positions of pruned base tables are recorded in a [`Annot::KeptColumns`]
//! annotation so the `.tbl` loader still parses the right fields; index and
//! dictionary annotations keep referring to original column space.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dblab_ir::expr::{Annot, Atom, Block, Expr, Sym};
use dblab_ir::types::StructId;
use dblab_ir::Program;

/// Remove unused fields. `prune_tables` gates base-table pruning (disabled
/// in the TPC-H-compliant configuration); intermediate records are always
/// pruned.
pub fn apply(p: &Program, prune_tables: bool) -> Program {
    let mut read: HashMap<StructId, HashSet<usize>> = HashMap::new();
    let mut table_sids: HashMap<StructId, (Sym, Arc<str>)> = HashMap::new();
    let mut index_cols: HashMap<Arc<str>, HashSet<usize>> = HashMap::new();
    scan(&p.body, &mut read, &mut table_sids, &mut index_cols);

    // Keep index key columns of base tables (the loader reads them even if
    // the query body does not).
    for (sid, (_, tname)) in &table_sids {
        if let Some(cols) = index_cols.get(tname) {
            read.entry(*sid).or_default().extend(cols.iter().copied());
        }
    }

    // Records used as *abstract* hash-table keys are compared by the
    // generic runtime's field-wise equality, which the IR cannot see:
    // protect them from pruning. (After hash-table specialization the
    // comparisons are explicit FieldGets, so nothing is protected.)
    let mut protected: HashSet<StructId> = HashSet::new();
    collect_protected(&p.body, &mut protected);

    let mut keep: HashMap<StructId, Vec<usize>> = HashMap::new();
    for (sid, def) in p.structs.iter() {
        if protected.contains(&sid) {
            continue;
        }
        let is_table = table_sids.contains_key(&sid);
        if is_table && !prune_tables {
            continue;
        }
        let used = read.get(&sid).cloned().unwrap_or_default();
        let mut kept: Vec<usize> = (0..def.fields.len()).filter(|i| used.contains(i)).collect();
        if kept.is_empty() {
            kept.push(0); // C structs cannot be empty.
        }
        if kept.len() < def.fields.len() {
            keep.insert(sid, kept);
        }
    }
    if keep.is_empty() {
        return p.clone();
    }

    let mut out = p.clone();
    // Rewrite the registry.
    for (sid, kept) in &keep {
        let def = out.structs.get_mut(*sid);
        def.fields = kept.iter().map(|&i| def.fields[i].clone()).collect();
    }
    // Record loader guidance for pruned base tables.
    for (sid, (sym, _)) in &table_sids {
        if let Some(kept) = keep.get(sid) {
            out.annots.add(*sym, Annot::KeptColumns(kept.clone()));
        }
    }
    // Renumber all field accesses.
    let remap: HashMap<StructId, HashMap<usize, usize>> = keep
        .iter()
        .map(|(sid, kept)| {
            (
                *sid,
                kept.iter()
                    .enumerate()
                    .map(|(new, &old)| (old, new))
                    .collect(),
            )
        })
        .collect();
    out.body = rewrite_block(&out.body, &remap);
    out
}

fn collect_protected(b: &Block, out: &mut HashSet<StructId>) {
    fn protect_key(t: &dblab_ir::Type, out: &mut HashSet<StructId>) {
        if let dblab_ir::Type::HashMap(k, _) | dblab_ir::Type::MultiMap(k, _) = t {
            if let dblab_ir::Type::Record(sid) = &**k {
                out.insert(*sid);
            }
        }
    }
    for st in &b.stmts {
        protect_key(&st.ty, out);
        for blk in st.expr.blocks() {
            collect_protected(blk, out);
        }
    }
}

fn scan(
    b: &Block,
    read: &mut HashMap<StructId, HashSet<usize>>,
    table_sids: &mut HashMap<StructId, (Sym, Arc<str>)>,
    index_cols: &mut HashMap<Arc<str>, HashSet<usize>>,
) {
    for st in &b.stmts {
        match &st.expr {
            Expr::FieldGet { sid, field, .. } => {
                read.entry(*sid).or_default().insert(*field);
            }
            Expr::LoadTable { sid, table } => {
                table_sids.insert(*sid, (st.sym, table.clone()));
            }
            Expr::LoadIndexUnique { table, field }
            | Expr::LoadIndexStarts { table, field }
            | Expr::LoadIndexItems { table, field } => {
                index_cols.entry(table.clone()).or_default().insert(*field);
            }
            _ => {}
        }
        for blk in st.expr.blocks() {
            scan(blk, read, table_sids, index_cols);
        }
    }
}

fn rewrite_block(b: &Block, remap: &HashMap<StructId, HashMap<usize, usize>>) -> Block {
    let mut stmts = Vec::with_capacity(b.stmts.len());
    for st in &b.stmts {
        let mut st = st.clone();
        match &mut st.expr {
            Expr::FieldGet { sid, field, .. } => {
                if let Some(m) = remap.get(sid) {
                    *field = *m.get(field).expect("read field was kept");
                }
            }
            Expr::FieldSet { sid, field, .. } => {
                if let Some(m) = remap.get(sid) {
                    match m.get(field) {
                        Some(nf) => *field = *nf,
                        None => continue, // write to a removed field: drop
                    }
                }
            }
            Expr::StructNew { sid, args } => {
                if let Some(m) = remap.get(sid) {
                    let mut kept: Vec<(usize, Atom)> = m
                        .iter()
                        .map(|(&old, &new)| (new, args[old].clone()))
                        .collect();
                    kept.sort_by_key(|(new, _)| *new);
                    *args = kept.into_iter().map(|(_, a)| a).collect();
                }
            }
            _ => {}
        }
        st.expr = dblab_ir::opt::map_blocks(&st.expr, |blk| rewrite_block(blk, remap));
        stmts.push(st);
    }
    Block {
        stmts,
        result: b.result.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::{Atom, FieldDef, IrBuilder, Level, StructDef, Type};

    #[test]
    fn unread_fields_are_pruned_and_indices_remapped() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "R".into(),
            fields: vec![
                FieldDef {
                    name: "a".into(),
                    ty: Type::Int,
                },
                FieldDef {
                    name: "b".into(),
                    ty: Type::Double,
                },
                FieldDef {
                    name: "c".into(),
                    ty: Type::Int,
                },
            ],
        });
        let r = b.struct_new(sid, vec![Atom::Int(1), Atom::double(2.0), Atom::Int(3)]);
        // Only c is read; a is written.
        b.field_set(r.clone(), sid, 0, Atom::Int(9));
        let c = b.field_get(r, sid, 2);
        b.printf("%d\n", vec![c]);
        let p = b.finish(Atom::Unit, Level::ScaLite);

        let q = apply(&p, true);
        assert_eq!(q.structs.get(sid).fields.len(), 1);
        assert_eq!(&*q.structs.get(sid).fields[0].name, "c");
        // StructNew has one arg; the write to `a` is gone; FieldGet uses 0.
        let sn = q
            .body
            .stmts
            .iter()
            .find_map(|st| match &st.expr {
                Expr::StructNew { args, .. } => Some(args.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(sn, vec![Atom::Int(3)]);
        assert!(!q
            .body
            .stmts
            .iter()
            .any(|st| matches!(st.expr, Expr::FieldSet { .. })));
        let fg = q
            .body
            .stmts
            .iter()
            .find_map(|st| match &st.expr {
                Expr::FieldGet { field, .. } => Some(*field),
                _ => None,
            })
            .unwrap();
        assert_eq!(fg, 0);
    }

    #[test]
    fn base_tables_pruned_only_when_enabled() {
        let mut b = IrBuilder::new();
        let sid = b.structs.register(StructDef {
            name: "t".into(),
            fields: vec![
                FieldDef {
                    name: "x".into(),
                    ty: Type::Int,
                },
                FieldDef {
                    name: "y".into(),
                    ty: Type::Int,
                },
            ],
        });
        let arr = b.load_table("t", sid);
        let rec = b.array_get(arr, Atom::Int(0));
        let x = b.field_get(rec, sid, 0);
        b.printf("%d\n", vec![x]);
        let p = b.finish(Atom::Unit, Level::ScaLite);

        let compliant = apply(&p, false);
        assert_eq!(compliant.structs.get(sid).fields.len(), 2);

        let q = apply(&p, true);
        assert_eq!(q.structs.get(sid).fields.len(), 1);
        // Loader guidance recorded.
        let load_sym = q
            .body
            .stmts
            .iter()
            .find(|st| matches!(st.expr, Expr::LoadTable { .. }))
            .unwrap()
            .sym;
        assert_eq!(q.annots.kept_columns(load_sym), Some(vec![0]));
    }
}
