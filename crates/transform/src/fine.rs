//! Fine-grained optimizations (Appendix E).
//!
//! The flagship: rewriting `x && y` into `x & y` when both operands are
//! already-computed booleans, trading a branch for a cheap bitwise
//! operation ("improves branch prediction"). In ANF both operands are
//! atoms, so the rewrite is safe whenever the right operand was produced by
//! pure code — which the builder guarantees for everything bound without a
//! `WRITE`/`IO` effect.

use dblab_ir::expr::{Atom, BinOp, Expr, Program, Sym};
use dblab_ir::rewrite::{run_rule, Rewriter, Rule};
use dblab_ir::Type;

struct Branchless;

impl Rule for Branchless {
    fn name(&self) -> &'static str {
        "branch-optimization"
    }

    fn apply(&mut self, rw: &mut Rewriter<'_>, _: Sym, ty: &Type, e: &Expr) -> Option<Atom> {
        if *ty != Type::Bool {
            return None;
        }
        match e {
            Expr::Bin(BinOp::And, a, b) => {
                let (a, b) = (rw.atom(a), rw.atom(b));
                Some(rw.b.bin(BinOp::BitAnd, a, b))
            }
            Expr::Bin(BinOp::Or, a, b) => {
                let (a, b) = (rw.atom(a), rw.atom(b));
                Some(rw.b.bin(BinOp::BitOr, a, b))
            }
            _ => None,
        }
    }
}

/// Apply the `&&` → `&` rewrite to a whole program.
pub fn apply(p: &Program) -> Program {
    run_rule(p, &mut Branchless, p.level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_ir::{IrBuilder, Level};

    #[test]
    fn and_becomes_bitand() {
        let mut b = IrBuilder::new();
        let v = b.decl_var(Atom::Int(1));
        let x = b.read_var(v);
        let c1 = b.lt(x.clone(), Atom::Int(5));
        let c2 = b.gt(x, Atom::Int(0));
        let c = b.and(c1, c2);
        let p = b.finish(c, Level::CScala);
        let q = apply(&p);
        assert!(q
            .body
            .stmts
            .iter()
            .any(|st| matches!(st.expr, Expr::Bin(BinOp::BitAnd, ..))));
        assert!(!q
            .body
            .stmts
            .iter()
            .any(|st| matches!(st.expr, Expr::Bin(BinOp::And, ..))));
    }

    #[test]
    fn non_bool_and_untouched() {
        let mut b = IrBuilder::new();
        let v = b.decl_var(Atom::Int(6));
        let x = b.read_var(v);
        let y = b.bin(BinOp::BitAnd, x, Atom::Int(3));
        let p = b.finish(y, Level::CScala);
        let q = apply(&p);
        assert_eq!(q.body.stmts.len(), p.body.stmts.len());
    }
}
