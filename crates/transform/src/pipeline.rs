//! Pipelining: the lowering from QPlan into ScaLite\[Map, List\] (§5.1).
//!
//! Implemented as a push engine: every operator is given a *consumer*
//! callback and emits code that feeds it one row at a time — the paper's
//! observation that "short-cut fusion has the same effect as the
//! push-engines proposed in [Neumann 2011]" made concrete. Rows between
//! operators are just environments of named atoms, so selections and
//! projections melt into the surrounding loops (operator inlining);
//! *pipeline breakers* (hash-join builds, aggregation, sorting) materialize
//! records explicitly through the ScaLite\[Map, List\] collection
//! vocabulary.
//!
//! The lowering also performs the paper's "informed materialization
//! decisions" (§4.3): when enabled, qualifying hash-join builds are elided
//! in favour of load-time indexes ([`crate::index_inference`]), and every
//! allocation site is annotated with worst-case cardinalities (App. D.1)
//! for the pool and specialization passes below.

use std::collections::HashMap;
use std::sync::Arc;

use dblab_catalog::{ColType, Schema};
use dblab_frontend::expr::ScalarExpr;
use dblab_frontend::qplan::{AggFunc, JoinKind, QPlan, QueryProgram, SortDir};
use dblab_ir::expr::{Annot, PrimOp};
use dblab_ir::types::{FieldDef, StructDef, StructId};
use dblab_ir::{Atom, Block, Expr, IrBuilder, Level, Program, Type, UnOp};

use crate::config::StackConfig;
use crate::index_inference::{analyze, IndexableBuild};
use crate::scalar::{ir_type, lower_expr, ColRef, RowEnv};

/// Largest dense-key range for aggregation arrays.
const MAX_DENSE_KEY: u64 = 1 << 26;

/// Loaded index atoms per (table, key column, unique): a unique
/// row-position array, or CSR starts+items.
type IndexLoads = HashMap<(Arc<str>, usize, bool), (Atom, Option<Atom>)>;

/// Column provenance per record type: which (table, column) each field
/// carries, when statically known.
type RecordProvenance = HashMap<StructId, Vec<Option<(Arc<str>, usize)>>>;

/// The lowering context.
pub struct Lowering<'a> {
    pub b: IrBuilder,
    pub schema: &'a Schema,
    pub cfg: &'a StackConfig,
    loads: HashMap<Arc<str>, (Atom, StructId)>,
    index_loads: IndexLoads,
    pub params: HashMap<Arc<str>, Atom>,
    rec_prov: RecordProvenance,
    rec_ctr: usize,
}

impl<'a> Lowering<'a> {
    /// Fresh lowering context (shared with the QMonad fusion lowering).
    pub fn new(schema: &'a Schema, cfg: &'a StackConfig) -> Lowering<'a> {
        Lowering {
            b: IrBuilder::new(),
            schema,
            cfg,
            loads: HashMap::new(),
            index_loads: HashMap::new(),
            params: HashMap::new(),
            rec_prov: HashMap::new(),
            rec_ctr: 0,
        }
    }
}

/// Lower a whole query program to a ScaLite\[Map, List\] IR program.
pub fn lower_program(prog: &QueryProgram, schema: &Schema, cfg: &StackConfig) -> Program {
    let mut lw = Lowering::new(schema, cfg);
    // Data-loading phase: base tables and inferred indexes (pre-computation
    // happens before the query timer starts, §7 / Figure 7c).
    for t in prog.tables() {
        lw.load(&t);
    }
    for (_, plan) in &prog.lets {
        lw.preload_indexes(plan);
    }
    lw.preload_indexes(&prog.main);

    // Declared-parameter prologue: each declaration becomes a positional
    // `LoadParam` slot, typed by its default literal. Binding happens here,
    // before the query timer — argv parsing is setup, not query work — and
    // before the lets, which may reference parameters. The parameter
    // *value* never enters the IR, so every binding of one template hashes,
    // memoizes and compiles identically.
    for (idx, decl) in prog.params.iter().enumerate() {
        assert!(
            decl.default.ty() != dblab_catalog::ColType::String,
            "string-typed query parameters are not supported \
             (parameter `{}`): string predicates specialize against the \
             per-column dictionary at compile time, which a per-execution \
             binding would bypass",
            decl.name
        );
        let atom =
            lw.b.emit(ir_type(decl.default.ty()), Expr::LoadParam { idx });
        lw.params.insert(decl.name.clone(), atom);
    }

    lw.b.prim(PrimOp::TimerStart, vec![]);

    // Scalar-subquery prologue.
    for (name, plan) in &prog.lets {
        let var = lw.b.decl_var(Atom::double(0.0));
        lw.produce(plan, &mut |lw, env| {
            let v = env.cols[0].atom.clone();
            let v = lw.coerce_double(v);
            lw.b.assign(var, v);
        });
        let read = lw.b.read_var(var);
        lw.params.insert(name.clone(), read);
    }

    // Main plan: print each result row.
    let out_cols = prog.main.output_cols(schema);
    let fmt = row_format(&out_cols);
    lw.produce(&prog.main, &mut |lw, env| {
        let args = out_cols
            .iter()
            .map(|(n, _)| env.lookup(n).atom.clone())
            .collect();
        lw.b.emit_unit(Expr::Printf {
            fmt: fmt.as_str().into(),
            args,
        });
    });

    lw.b.prim(PrimOp::TimerStop, vec![]);
    lw.b.prim(PrimOp::PrintRusage, vec![]);
    lw.b.finish(Atom::Unit, Level::MapList)
}

/// The printf row format for a result schema (`%c` for chars, `%.4f` for
/// doubles — must agree with `ResultSet::to_text`).
pub fn row_format(cols: &[(Arc<str>, ColType)]) -> String {
    let mut fmt = String::new();
    for (i, (_, t)) in cols.iter().enumerate() {
        if i > 0 {
            fmt.push('|');
        }
        fmt.push_str(match t {
            ColType::Int | ColType::Date | ColType::Bool => "%d",
            ColType::Long => "%ld",
            ColType::Double => "%.4f",
            ColType::String => "%s",
            ColType::Char => "%c",
        });
    }
    fmt.push('\n');
    fmt
}

/// Trace a column of `plan`'s output back to a verbatim base-table column.
pub fn static_prov(plan: &QPlan, name: &str, schema: &Schema) -> Option<(Arc<str>, usize)> {
    match plan {
        QPlan::Scan { table, alias } => {
            let base: &str = match alias {
                Some(a) => name.strip_prefix(&format!("{a}_"))?,
                None => name,
            };
            let def = schema.table(table);
            def.columns
                .iter()
                .position(|c| &*c.name == base)
                .map(|i| (table.clone(), i))
        }
        QPlan::Select { child, .. } | QPlan::Sort { child, .. } | QPlan::Limit { child, .. } => {
            static_prov(child, name, schema)
        }
        QPlan::Project { child, cols } => {
            let (_, e) = cols.iter().find(|(n, _)| &**n == name)?;
            match e {
                ScalarExpr::Col(n2) => static_prov(child, n2, schema),
                _ => None,
            }
        }
        QPlan::HashJoin {
            left, right, kind, ..
        } => static_prov(left, name, schema).or_else(|| match kind {
            JoinKind::Inner | JoinKind::LeftOuter => static_prov(right, name, schema),
            _ => None,
        }),
        QPlan::Agg {
            child, group_by, ..
        } => {
            let (_, e) = group_by.iter().find(|(n, _)| &**n == name)?;
            match e {
                ScalarExpr::Col(n2) => static_prov(child, n2, schema),
                _ => None,
            }
        }
    }
}

impl<'a> Lowering<'a> {
    // ------------------------------------------------------------------
    // Scoped control-flow helpers (IrBuilder's closure API can't lend the
    // whole lowering context, so these wrap the raw scope primitives).
    // ------------------------------------------------------------------

    pub(crate) fn if_then(&mut self, cond: Atom, f: impl FnOnce(&mut Self)) {
        self.b.scope_push();
        f(self);
        let then_b = self.b.scope_pop(Atom::Unit);
        self.b.emit_unit(Expr::If {
            cond,
            then_b,
            else_b: Block::default(),
        });
    }

    fn for_range(&mut self, lo: Atom, hi: Atom, f: impl FnOnce(&mut Self, Atom)) {
        let var = self.b.bind(Type::Int);
        self.b.scope_push();
        f(self, Atom::Sym(var));
        let body = self.b.scope_pop(Atom::Unit);
        self.b.emit_unit(Expr::ForRange { lo, hi, var, body });
    }

    fn list_foreach(&mut self, list: Atom, f: impl FnOnce(&mut Self, Atom)) {
        let elem = self
            .b
            .atom_type(&list)
            .elem()
            .cloned()
            .expect("foreach on non-list");
        let var = self.b.bind(elem);
        self.b.scope_push();
        f(self, Atom::Sym(var));
        let body = self.b.scope_pop(Atom::Unit);
        self.b.emit_unit(Expr::ListForeach { list, var, body });
    }

    fn hashmap_foreach(&mut self, map: Atom, f: impl FnOnce(&mut Self, Atom, Atom)) {
        let (kt, vt) = match self.b.atom_type(&map) {
            Type::HashMap(k, v) => (*k, *v),
            other => panic!("hashmap_foreach on {other}"),
        };
        let kvar = self.b.bind(kt);
        let vvar = self.b.bind(vt);
        self.b.scope_push();
        f(self, Atom::Sym(kvar), Atom::Sym(vvar));
        let body = self.b.scope_pop(Atom::Unit);
        self.b.emit_unit(Expr::HashMapForeach {
            map,
            kvar,
            vvar,
            body,
        });
    }

    fn multimap_foreach_at(&mut self, map: Atom, key: Atom, f: impl FnOnce(&mut Self, Atom)) {
        let vt = match self.b.atom_type(&map) {
            Type::MultiMap(_, v) => *v,
            other => panic!("multimap_foreach_at on {other}"),
        };
        let var = self.b.bind(vt);
        self.b.scope_push();
        f(self, Atom::Sym(var));
        let body = self.b.scope_pop(Atom::Unit);
        self.b.emit_unit(Expr::MultiMapForeachAt {
            map,
            key,
            var,
            body,
        });
    }

    fn hashmap_get_or_init(
        &mut self,
        map: Atom,
        key: Atom,
        init: impl FnOnce(&mut Self) -> Atom,
    ) -> Atom {
        let vt = match self.b.atom_type(&map) {
            Type::HashMap(_, v) => *v,
            other => panic!("get_or_init on {other}"),
        };
        self.b.scope_push();
        let res = init(self);
        let blk = self.b.scope_pop(res);
        self.b.emit(
            vt,
            Expr::HashMapGetOrInit {
                map,
                key,
                init: blk,
            },
        )
    }

    // ------------------------------------------------------------------
    // Loading, structs, environments
    // ------------------------------------------------------------------

    pub(crate) fn load(&mut self, table: &str) -> (Atom, StructId) {
        if let Some(found) = self.loads.get(table) {
            return found.clone();
        }
        let def = self.schema.table(table);
        let sid = self.b.structs.register(StructDef {
            name: def.name.clone(),
            fields: def
                .columns
                .iter()
                .map(|c| FieldDef {
                    name: c.name.clone(),
                    ty: ir_type(c.ty),
                })
                .collect(),
        });
        self.rec_prov.insert(
            sid,
            (0..def.columns.len())
                .map(|i| Some((def.name.clone(), i)))
                .collect(),
        );
        let arr = self.b.load_table(table, sid);
        if let Atom::Sym(s) = arr {
            self.b
                .annotate(s, Annot::SizeHint(def.stats.row_count.max(1)));
            self.b
                .annotate(s, Annot::TableLayout(crate::layout::table_layout(self.cfg)));
        }
        self.loads.insert(def.name.clone(), (arr.clone(), sid));
        (arr, sid)
    }

    /// Walk the plan and emit load-time index construction for every join
    /// whose build side qualifies (Figure 7's pre-computation phase).
    fn preload_indexes(&mut self, plan: &QPlan) {
        match plan {
            QPlan::Scan { .. } => {}
            QPlan::Select { child, .. }
            | QPlan::Project { child, .. }
            | QPlan::Agg { child, .. }
            | QPlan::Sort { child, .. }
            | QPlan::Limit { child, .. } => self.preload_indexes(child),
            QPlan::HashJoin {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                self.preload_indexes(left);
                self.preload_indexes(right);
                if !self.cfg.index_inference || left_keys.len() != 1 || *kind == JoinKind::LeftOuter
                {
                    return;
                }
                let (build, key) = match kind {
                    JoinKind::Inner => (left, &left_keys[0]),
                    _ => (right, &right_keys[0]),
                };
                if let Some(ix) = analyze(build, key, self.schema) {
                    self.ensure_index(&ix);
                }
            }
        }
    }

    fn ensure_index(&mut self, ix: &IndexableBuild<'_>) {
        let key = (ix.table.clone(), ix.key_col, ix.unique);
        if self.index_loads.contains_key(&key) {
            return;
        }
        self.load(&ix.table);
        let atoms = if ix.unique {
            let a = self.b.load_index_unique(&ix.table, ix.key_col);
            (a, None)
        } else {
            let starts = self.b.load_index_starts(&ix.table, ix.key_col);
            let items = self.b.load_index_items(&ix.table, ix.key_col);
            (starts, Some(items))
        };
        self.index_loads.insert(key, atoms);
    }

    fn fresh_struct(&mut self, prefix: &str, fields: Vec<FieldDef>) -> StructId {
        self.rec_ctr += 1;
        self.b.structs.register(StructDef {
            name: format!("{prefix}{}", self.rec_ctr).into(),
            fields,
        })
    }

    /// Rebuild a row environment by reading every field of a record.
    fn env_from_record(&mut self, rec: &Atom, sid: StructId) -> RowEnv {
        let def = self.b.structs.get(sid).clone();
        let prov = self.rec_prov.get(&sid).cloned().unwrap_or_default();
        let cols = def
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let atom = self.b.field_get(rec.clone(), sid, i);
                let p = prov.get(i).cloned().flatten();
                if let (Atom::Sym(s), Some((t, c))) = (&atom, &p) {
                    self.b.annotate(
                        *s,
                        Annot::Column {
                            table: t.clone(),
                            field: *c,
                        },
                    );
                }
                ColRef {
                    name: f.name.clone(),
                    atom,
                    prov: p,
                }
            })
            .collect();
        RowEnv::new(cols)
    }

    /// Environment for one base-table record (alias-aware).
    fn scan_env(
        &mut self,
        table: &str,
        alias: &Option<Arc<str>>,
        rec: &Atom,
        sid: StructId,
    ) -> RowEnv {
        let def = self.schema.table(table);
        let cols = def
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let atom = self.b.field_get(rec.clone(), sid, i);
                if let Atom::Sym(s) = &atom {
                    self.b.annotate(
                        *s,
                        Annot::Column {
                            table: def.name.clone(),
                            field: i,
                        },
                    );
                }
                let name: Arc<str> = match alias {
                    Some(a) => format!("{a}_{}", c.name).into(),
                    None => c.name.clone(),
                };
                ColRef {
                    name,
                    atom,
                    prov: Some((def.name.clone(), i)),
                }
            })
            .collect();
        RowEnv::new(cols)
    }

    fn coerce_double(&mut self, a: Atom) -> Atom {
        match self.b.atom_type(&a) {
            Type::Int => self.b.un(UnOp::I2D, a),
            Type::Long => self.b.un(UnOp::L2D, a),
            _ => a,
        }
    }

    /// Worst-case cardinality estimate (App. D.1).
    fn estimate(&self, plan: &QPlan) -> u64 {
        match plan {
            QPlan::Scan { table, .. } => self.schema.table(table).stats.row_count.max(1),
            QPlan::Select { child, .. }
            | QPlan::Project { child, .. }
            | QPlan::Sort { child, .. } => self.estimate(child),
            QPlan::Limit { child, n } => (*n).min(self.estimate(child)),
            QPlan::HashJoin {
                left, right, kind, ..
            } => match kind {
                JoinKind::Inner => self.estimate(left).max(self.estimate(right)),
                JoinKind::LeftSemi | JoinKind::LeftAnti => self.estimate(left),
                JoinKind::LeftOuter => self.estimate(left).max(self.estimate(right)),
            },
            QPlan::Agg {
                child, group_by, ..
            } => {
                // Group count: the product of the group columns' distinct
                // counts when provenance and statistics allow, else the
                // child cardinality (worst case, App. D.1).
                let c = self.estimate(child);
                let mut product: u64 = 1;
                for (n, e) in group_by {
                    let d = match e {
                        ScalarExpr::Col(_) => static_prov(child, n, self.schema)
                            .and_then(|(t, f)| self.schema.table(&t).stats.distinct.get(f).copied())
                            .filter(|d| *d > 0),
                        _ => None,
                    };
                    match d {
                        Some(d) => product = product.saturating_mul(d),
                        None => return c,
                    }
                }
                c.min(product.max(1))
            }
        }
    }

    // ------------------------------------------------------------------
    // The push engine
    // ------------------------------------------------------------------

    pub fn produce(&mut self, plan: &QPlan, consumer: &mut dyn FnMut(&mut Self, &RowEnv)) {
        match plan {
            QPlan::Scan { table, alias } => {
                let (arr, sid) = self.load(table);
                let len = self.b.array_len(arr.clone());
                self.for_range(Atom::Int(0), len, |lw, i| {
                    let rec = lw.b.array_get(arr.clone(), i);
                    let env = lw.scan_env(table, alias, &rec, sid);
                    consumer(lw, &env);
                });
            }
            QPlan::Select { child, pred } => {
                self.produce(child, &mut |lw, env| {
                    let p = lower_expr(&mut lw.b, env, &lw.params, pred);
                    lw.if_then(p, |lw| consumer(lw, env));
                });
            }
            QPlan::Project { child, cols } => {
                self.produce(child, &mut |lw, env| {
                    let new_cols = cols
                        .iter()
                        .map(|(n, e)| {
                            let atom = lower_expr(&mut lw.b, env, &lw.params, e);
                            let prov = match e {
                                ScalarExpr::Col(c) => env.lookup(c).prov.clone(),
                                _ => None,
                            };
                            ColRef {
                                name: n.clone(),
                                atom,
                                prov,
                            }
                        })
                        .collect();
                    let out = RowEnv::new(new_cols);
                    consumer(lw, &out);
                });
            }
            QPlan::HashJoin {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
            } => self.join(
                left, right, *kind, left_keys, right_keys, residual, consumer,
            ),
            QPlan::Agg {
                child,
                group_by,
                aggs,
            } => self.aggregate(plan, child, group_by, aggs, consumer),
            QPlan::Sort { child, keys } => self.sort(child, keys, consumer),
            QPlan::Limit { child, n } => {
                let cnt = self.b.decl_var(Atom::Int(0));
                self.produce(child, &mut |lw, env| {
                    let c = lw.b.read_var(cnt);
                    let cond = lw.b.lt(c, Atom::Int(*n as i64));
                    lw.if_then(cond, |lw| {
                        let c2 = lw.b.read_var(cnt);
                        let c3 = lw.b.add(c2, Atom::Int(1));
                        lw.b.assign(cnt, c3);
                        consumer(lw, env);
                    });
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Joins
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        left: &QPlan,
        right: &QPlan,
        kind: JoinKind,
        left_keys: &[ScalarExpr],
        right_keys: &[ScalarExpr],
        residual: &Option<ScalarExpr>,
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        // Inner joins build the left input (paper Figure 4d); the
        // left-preserving variants build the right input and probe with
        // left rows.
        let (build, probe, build_keys, probe_keys) = match kind {
            JoinKind::Inner => (left, right, left_keys, right_keys),
            _ => (right, left, right_keys, left_keys),
        };

        // Informed materialization decision (§4.3): use a load-time index
        // instead of a query-time hash table when the build side qualifies.
        // Outer joins keep the hash-table path (they need per-match rows
        // *and* the preserved-row branch).
        if self.cfg.index_inference && build_keys.len() == 1 && kind != JoinKind::LeftOuter {
            if let Some(ix) = analyze(build, &build_keys[0], self.schema) {
                let key = (ix.table.clone(), ix.key_col, ix.unique);
                if self.index_loads.contains_key(&key) {
                    return self.indexed_join(&ix, probe, kind, probe_keys, residual, consumer);
                }
            }
        }

        let build_cols = build.output_cols(self.schema);
        let key_types: Vec<Type> = build_keys
            .iter()
            .map(|k| ir_type(k.ty(&build_cols)))
            .collect();
        let (key_ty, key_sid) = if key_types.len() == 1 {
            (key_types[0].clone(), None)
        } else {
            let sid = self.fresh_struct(
                "Key",
                key_types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| FieldDef {
                        name: format!("k{i}").into(),
                        ty: t.clone(),
                    })
                    .collect(),
            );
            self.rec_prov.insert(sid, vec![None; key_types.len()]);
            (Type::Record(sid), Some(sid))
        };

        // Register the build-row record type up front.
        let rec_fields: Vec<FieldDef> = build_cols
            .iter()
            .map(|(n, t)| FieldDef {
                name: n.clone(),
                ty: ir_type(*t),
            })
            .collect();
        let rec_sid = self.fresh_struct("Rec", rec_fields);
        let hint = self.estimate(build);

        let mm = self.b.multimap_new(key_ty, Type::Record(rec_sid));
        if let Atom::Sym(s) = mm {
            self.b.annotate(s, Annot::SizeHint(hint));
        }

        // Build phase.
        let mut first = true;
        self.produce(build, &mut |lw, env| {
            if first {
                // Provenance becomes known on the first row (identical for
                // every row — it is per-column, not per-value).
                lw.rec_prov
                    .insert(rec_sid, env.cols.iter().map(|c| c.prov.clone()).collect());
                first = false;
            }
            let k = lw.join_key(env, build_keys, key_sid);
            let args = env.cols.iter().map(|c| c.atom.clone()).collect();
            let rec = lw.b.struct_new(rec_sid, args);
            if let Atom::Sym(s) = rec {
                lw.b.annotate(s, Annot::SizeHint(hint));
            }
            lw.b.multimap_add(mm.clone(), k, rec);
        });

        // Probe phase.
        self.produce(probe, &mut |lw, penv| {
            let pk = lw.join_key(penv, probe_keys, key_sid);
            match kind {
                JoinKind::Inner => {
                    lw.multimap_foreach_at(mm.clone(), pk, |lw, brec| {
                        let benv = lw.env_from_record(&brec, rec_sid);
                        let combined = benv.concat(penv);
                        lw.with_residual(residual, &combined, consumer);
                    });
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    let found = lw.b.decl_var(Atom::Bool(false));
                    lw.multimap_foreach_at(mm.clone(), pk, |lw, brec| match residual {
                        None => lw.b.assign(found, Atom::Bool(true)),
                        Some(pred) => {
                            let benv = lw.env_from_record(&brec, rec_sid);
                            let combined = penv.concat(&benv);
                            let p = lower_expr(&mut lw.b, &combined, &lw.params, pred);
                            lw.if_then(p, |lw| lw.b.assign(found, Atom::Bool(true)));
                        }
                    });
                    let f = lw.b.read_var(found);
                    let cond = if kind == JoinKind::LeftSemi {
                        f
                    } else {
                        lw.b.un(UnOp::Not, f)
                    };
                    lw.if_then(cond, |lw| consumer(lw, penv));
                }
                JoinKind::LeftOuter => {
                    let found = lw.b.decl_var(Atom::Bool(false));
                    lw.multimap_foreach_at(mm.clone(), pk, |lw, brec| {
                        let benv = lw.env_from_record(&brec, rec_sid);
                        let mut combined = penv.concat(&benv);
                        combined.cols.push(ColRef {
                            name: QPlan::MATCHED.into(),
                            atom: Atom::Bool(true),
                            prov: None,
                        });
                        match residual {
                            None => {
                                lw.b.assign(found, Atom::Bool(true));
                                consumer(lw, &combined);
                            }
                            Some(pred) => {
                                let p = lower_expr(&mut lw.b, &combined, &lw.params, pred);
                                lw.if_then(p, |lw| {
                                    lw.b.assign(found, Atom::Bool(true));
                                    consumer(lw, &combined);
                                });
                            }
                        }
                    });
                    let f = lw.b.read_var(found);
                    let not_found = lw.b.un(UnOp::Not, f);
                    let build_cols = build.output_cols(lw.schema);
                    lw.if_then(not_found, |lw| {
                        let mut combined = penv.clone();
                        for (n, t) in &build_cols {
                            combined.cols.push(ColRef {
                                name: n.clone(),
                                atom: default_atom(*t),
                                prov: None,
                            });
                        }
                        combined.cols.push(ColRef {
                            name: QPlan::MATCHED.into(),
                            atom: Atom::Bool(false),
                            prov: None,
                        });
                        consumer(lw, &combined);
                    });
                }
            }
        });
    }

    /// Figure 7c/7d: probe a load-time index instead of a hash table.
    fn indexed_join(
        &mut self,
        ix: &IndexableBuild<'_>,
        probe: &QPlan,
        kind: JoinKind,
        probe_keys: &[ScalarExpr],
        residual: &Option<ScalarExpr>,
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        let (tbl, sid) = self.loads[&ix.table].clone();
        let (a0, a1) = self.index_loads[&(ix.table.clone(), ix.key_col, ix.unique)].clone();
        let table = ix.table.clone();
        let alias = ix.alias.clone();
        let filters: Vec<ScalarExpr> = ix.filters.iter().map(|f| (*f).clone()).collect();
        let unique = ix.unique;

        self.produce(probe, &mut |lw, penv| {
            let pk = lower_expr(&mut lw.b, penv, &lw.params, &probe_keys[0]);
            // Per-match body shared by both index shapes.
            let emit_match =
                |lw: &mut Self, row_idx: Atom, consumer: &mut dyn FnMut(&mut Self, &RowEnv)| {
                    let rec = lw.b.array_get(tbl.clone(), row_idx);
                    let benv = lw.scan_env(&table, &alias, &rec, sid);
                    // Re-apply the build-side filters (Figure 7c keeps the
                    // `if(r.name == "R1")` inside the probe loop).
                    let mut cond = Atom::Bool(true);
                    for f in &filters {
                        let p = lower_expr(&mut lw.b, &benv, &lw.params, f);
                        cond = lw.b.and(cond, p);
                    }
                    if let Some(pred) = residual {
                        let combined = match kind {
                            JoinKind::Inner => benv.concat(penv),
                            _ => penv.concat(&benv),
                        };
                        let p = lower_expr(&mut lw.b, &combined, &lw.params, pred);
                        cond = lw.b.and(cond, p);
                    }
                    match kind {
                        JoinKind::Inner => {
                            let combined = benv.concat(penv);
                            lw.if_then(cond, |lw| consumer(lw, &combined));
                        }
                        _ => lw.if_then(cond, |lw| consumer(lw, &RowEnv::default())),
                    }
                };

            match kind {
                JoinKind::Inner => {
                    if unique {
                        let ri = lw.b.array_get(a0.clone(), pk);
                        let ok = lw.b.ge(ri.clone(), Atom::Int(0));
                        lw.if_then(ok, |lw| emit_match(lw, ri, consumer));
                    } else {
                        let s = lw.b.array_get(a0.clone(), pk.clone());
                        let k1 = lw.b.add(pk, Atom::Int(1));
                        let e = lw.b.array_get(a0.clone(), k1);
                        let items = a1.clone().expect("csr items");
                        lw.for_range(s, e, |lw, i| {
                            let ri = lw.b.array_get(items.clone(), i);
                            emit_match(lw, ri, consumer);
                        });
                    }
                }
                JoinKind::LeftSemi | JoinKind::LeftAnti | JoinKind::LeftOuter => {
                    // The probe side is the preserved side here: count
                    // matches into a flag.
                    let found = lw.b.decl_var(Atom::Bool(false));
                    {
                        let mut set_flag = |lw: &mut Self, _env: &RowEnv| {
                            lw.b.assign(found, Atom::Bool(true));
                        };
                        if unique {
                            let ri = lw.b.array_get(a0.clone(), pk);
                            let ok = lw.b.ge(ri.clone(), Atom::Int(0));
                            lw.if_then(ok, |lw| emit_match(lw, ri, &mut set_flag));
                        } else {
                            let s = lw.b.array_get(a0.clone(), pk.clone());
                            let k1 = lw.b.add(pk, Atom::Int(1));
                            let e = lw.b.array_get(a0.clone(), k1);
                            let items = a1.clone().expect("csr items");
                            lw.for_range(s, e, |lw, i| {
                                let ri = lw.b.array_get(items.clone(), i);
                                emit_match(lw, ri, &mut set_flag);
                            });
                        }
                    }
                    let f = lw.b.read_var(found);
                    match kind {
                        JoinKind::LeftSemi => lw.if_then(f, |lw| consumer(lw, penv)),
                        JoinKind::LeftAnti => {
                            let nf = lw.b.un(UnOp::Not, f);
                            lw.if_then(nf, |lw| consumer(lw, penv));
                        }
                        // Outer joins never take the indexed path (guarded
                        // in `join`); inner joins take the branch above.
                        JoinKind::LeftOuter | JoinKind::Inner => unreachable!(),
                    }
                }
            }
        });
    }

    fn with_residual(
        &mut self,
        residual: &Option<ScalarExpr>,
        env: &RowEnv,
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        match residual {
            None => consumer(self, env),
            Some(pred) => {
                let p = lower_expr(&mut self.b, env, &self.params, pred);
                self.if_then(p, |lw| consumer(lw, env));
            }
        }
    }

    fn join_key(&mut self, env: &RowEnv, keys: &[ScalarExpr], key_sid: Option<StructId>) -> Atom {
        if keys.len() == 1 {
            return lower_expr(&mut self.b, env, &self.params, &keys[0]);
        }
        let sid = key_sid.expect("composite key struct");
        let args = keys
            .iter()
            .map(|k| lower_expr(&mut self.b, env, &self.params, k))
            .collect();
        self.b.struct_new(sid, args)
    }

    // ------------------------------------------------------------------
    // Aggregation
    // ------------------------------------------------------------------

    fn aggregate(
        &mut self,
        plan: &QPlan,
        child: &QPlan,
        group_by: &[(Arc<str>, ScalarExpr)],
        aggs: &[(Arc<str>, AggFunc)],
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        if group_by.is_empty() {
            return self.aggregate_global(child, aggs, consumer);
        }
        if aggs
            .iter()
            .any(|(_, a)| matches!(a, AggFunc::CountDistinct(_)))
        {
            return self.aggregate_distinct(plan, child, group_by, aggs, consumer);
        }

        let child_cols = child.output_cols(self.schema);
        // Aggregate record: group columns, hidden row count, accumulators.
        let mut fields: Vec<FieldDef> = group_by
            .iter()
            .map(|(n, e)| FieldDef {
                name: n.clone(),
                ty: ir_type(e.ty(&child_cols)),
            })
            .collect();
        fields.push(FieldDef {
            name: "__cnt".into(),
            ty: Type::Long,
        });
        let cnt_idx = fields.len() - 1;
        let mut acc_idx = Vec::new();
        for (n, a) in aggs {
            acc_idx.push(fields.len());
            match a {
                AggFunc::Sum(e) => fields.push(FieldDef {
                    name: n.clone(),
                    ty: sum_ty(e, &child_cols),
                }),
                AggFunc::Count => fields.push(FieldDef {
                    name: n.clone(),
                    ty: Type::Long,
                }),
                AggFunc::Avg(_) => fields.push(FieldDef {
                    name: format!("{n}__sum").into(),
                    ty: Type::Double,
                }),
                AggFunc::Min(e) | AggFunc::Max(e) => fields.push(FieldDef {
                    name: n.clone(),
                    ty: ir_type(e.ty(&child_cols)),
                }),
                AggFunc::CountDistinct(_) => unreachable!("handled above"),
            }
        }
        let rec_sid = self.fresh_struct("Agg", fields);
        self.rec_prov.insert(rec_sid, {
            let mut p: Vec<Option<(Arc<str>, usize)>> = group_by
                .iter()
                .map(|(n, _)| static_prov(plan, n, self.schema))
                .collect();
            p.resize(acc_idx.last().map(|i| i + 1).unwrap_or(p.len() + 1), None);
            p
        });

        let key_types: Vec<Type> = group_by
            .iter()
            .map(|(_, e)| ir_type(e.ty(&child_cols)))
            .collect();
        let (key_ty, key_sid) = if key_types.len() == 1 {
            (key_types[0].clone(), None)
        } else {
            let sid = self.fresh_struct(
                "Key",
                key_types
                    .iter()
                    .enumerate()
                    .map(|(i, t)| FieldDef {
                        name: format!("k{i}").into(),
                        ty: t.clone(),
                    })
                    .collect(),
            );
            self.rec_prov.insert(sid, vec![None; key_types.len()]);
            (Type::Record(sid), Some(sid))
        };

        let hint = self.estimate(plan);
        let hm = self.b.hashmap_new(key_ty, Type::Record(rec_sid));
        let mut dense = None;
        if let Atom::Sym(s) = hm {
            self.b.annotate(s, Annot::SizeHint(hint));
            if group_by.len() == 1 {
                if let Some((t, f)) = group_col_prov(plan, self.schema) {
                    let max = *self.schema.table(&t).stats.int_max.get(f).unwrap_or(&0);
                    if max > 0
                        && max <= MAX_DENSE_KEY
                        && self.schema.table(&t).columns[f].ty == ColType::Int
                    {
                        self.b.annotate(s, Annot::DenseKey { max });
                        dense = Some(max);
                    }
                }
            }
            if aggs
                .iter()
                .any(|(_, a)| matches!(a, AggFunc::Min(_) | AggFunc::Max(_)))
            {
                self.b.annotate(s, Annot::Comment("has_minmax".into()));
            }
        }
        let _ = dense;

        let group_exprs: Vec<ScalarExpr> = group_by.iter().map(|(_, e)| e.clone()).collect();
        self.produce(child, &mut |lw, env| {
            let k = lw.join_key(env, &group_exprs, key_sid);
            let key_atoms: Vec<Atom> = group_exprs
                .iter()
                .map(|e| lower_expr(&mut lw.b, env, &lw.params, e))
                .collect();
            // Pre-compute aggregate inputs (needed by init for min/max).
            let inputs: Vec<Option<Atom>> = aggs
                .iter()
                .map(|(_, a)| match a {
                    AggFunc::Sum(e) | AggFunc::Avg(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                        Some(lower_expr(&mut lw.b, env, &lw.params, e))
                    }
                    AggFunc::Count => None,
                    AggFunc::CountDistinct(_) => unreachable!(),
                })
                .collect();
            let rec = lw.hashmap_get_or_init(hm.clone(), k, |lw| {
                let mut args = key_atoms.clone();
                args.push(Atom::Long(0)); // __cnt
                for ((_, a), input) in aggs.iter().zip(&inputs) {
                    args.push(match a {
                        AggFunc::Sum(e) => {
                            if sum_ty(e, &child_cols) == Type::Double {
                                Atom::double(0.0)
                            } else {
                                Atom::Long(0)
                            }
                        }
                        AggFunc::Count => Atom::Long(0),
                        AggFunc::Avg(_) => Atom::double(0.0),
                        AggFunc::Min(_) | AggFunc::Max(_) => input.clone().expect("min/max input"),
                        AggFunc::CountDistinct(_) => unreachable!(),
                    });
                }
                lw.b.struct_new(rec_sid, args)
            });
            // Row count.
            let c = lw.b.field_get(rec.clone(), rec_sid, cnt_idx);
            let c1 = lw.b.add(c, Atom::Long(1));
            lw.b.field_set(rec.clone(), rec_sid, cnt_idx, c1);
            // Accumulator updates.
            for (((_, a), input), &fi) in aggs.iter().zip(&inputs).zip(&acc_idx) {
                match a {
                    AggFunc::Sum(_) | AggFunc::Avg(_) => {
                        let mut v = input.clone().expect("sum input");
                        if matches!(a, AggFunc::Avg(_)) {
                            v = lw.coerce_double(v);
                        }
                        let cur = lw.b.field_get(rec.clone(), rec_sid, fi);
                        let nv = lw.b.add(cur, v);
                        lw.b.field_set(rec.clone(), rec_sid, fi, nv);
                    }
                    AggFunc::Count => {
                        let cur = lw.b.field_get(rec.clone(), rec_sid, fi);
                        let nv = lw.b.add(cur, Atom::Long(1));
                        lw.b.field_set(rec.clone(), rec_sid, fi, nv);
                    }
                    AggFunc::Min(_) | AggFunc::Max(_) => {
                        let v = input.clone().expect("minmax input");
                        let cur = lw.b.field_get(rec.clone(), rec_sid, fi);
                        let is_str = lw.b.atom_type(&cur) == Type::String;
                        let better = if is_str {
                            let c = lw.b.prim(PrimOp::StrCmp, vec![v.clone(), cur.clone()]);
                            if matches!(a, AggFunc::Min(_)) {
                                lw.b.lt(c, Atom::Int(0))
                            } else {
                                lw.b.gt(c, Atom::Int(0))
                            }
                        } else if matches!(a, AggFunc::Min(_)) {
                            lw.b.lt(v.clone(), cur.clone())
                        } else {
                            lw.b.gt(v.clone(), cur.clone())
                        };
                        lw.if_then(better, |lw| {
                            lw.b.field_set(rec.clone(), rec_sid, fi, v);
                        });
                    }
                    AggFunc::CountDistinct(_) => unreachable!(),
                }
            }
        });

        // Emission phase.
        self.hashmap_foreach(hm, |lw, _k, rec| {
            let cnt = lw.b.field_get(rec.clone(), rec_sid, cnt_idx);
            let non_empty = lw.b.gt(cnt.clone(), Atom::Long(0));
            lw.if_then(non_empty, |lw| {
                let prov = lw.rec_prov.get(&rec_sid).cloned().unwrap_or_default();
                let mut cols = Vec::new();
                for (i, (n, _)) in group_by.iter().enumerate() {
                    let atom = lw.b.field_get(rec.clone(), rec_sid, i);
                    let p = prov.get(i).cloned().flatten();
                    if let (Atom::Sym(s), Some((t, c))) = (&atom, &p) {
                        lw.b.annotate(
                            *s,
                            Annot::Column {
                                table: t.clone(),
                                field: *c,
                            },
                        );
                    }
                    cols.push(ColRef {
                        name: n.clone(),
                        atom,
                        prov: p,
                    });
                }
                for (((n, a), &fi), _) in aggs.iter().zip(&acc_idx).zip(0..) {
                    let atom = match a {
                        AggFunc::Avg(_) => {
                            let s = lw.b.field_get(rec.clone(), rec_sid, fi);
                            let c = lw.b.field_get(rec.clone(), rec_sid, cnt_idx);
                            let cd = lw.b.un(UnOp::L2D, c);
                            lw.b.div(s, cd)
                        }
                        _ => lw.b.field_get(rec.clone(), rec_sid, fi),
                    };
                    cols.push(ColRef {
                        name: n.clone(),
                        atom,
                        prov: None,
                    });
                }
                let env = RowEnv::new(cols);
                consumer(lw, &env);
            });
        });
    }

    fn aggregate_global(
        &mut self,
        child: &QPlan,
        aggs: &[(Arc<str>, AggFunc)],
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        let child_cols = child.output_cols(self.schema);
        // One accumulator variable per aggregate (+count for avg).
        enum Acc {
            Simple(dblab_ir::Sym),
            AvgPair(dblab_ir::Sym, dblab_ir::Sym),
        }
        let mut accs = Vec::new();
        for (_, a) in aggs {
            match a {
                AggFunc::Sum(e) => {
                    let init = if sum_ty(e, &child_cols) == Type::Double {
                        Atom::double(0.0)
                    } else {
                        Atom::Long(0)
                    };
                    accs.push(Acc::Simple(self.b.decl_var(init)));
                }
                AggFunc::Count => accs.push(Acc::Simple(self.b.decl_var(Atom::Long(0)))),
                AggFunc::Avg(_) => {
                    let s = self.b.decl_var(Atom::double(0.0));
                    let c = self.b.decl_var(Atom::Long(0));
                    accs.push(Acc::AvgPair(s, c));
                }
                AggFunc::Min(_) => {
                    accs.push(Acc::Simple(self.b.decl_var(Atom::double(f64::INFINITY))))
                }
                AggFunc::Max(_) => accs.push(Acc::Simple(
                    self.b.decl_var(Atom::double(f64::NEG_INFINITY)),
                )),
                AggFunc::CountDistinct(_) => {
                    unimplemented!("global COUNT(DISTINCT) is not needed by TPC-H")
                }
            }
        }
        self.produce(child, &mut |lw, env| {
            for ((_, a), acc) in aggs.iter().zip(&accs) {
                match (a, acc) {
                    (AggFunc::Sum(e), Acc::Simple(v)) => {
                        let x = lower_expr(&mut lw.b, env, &lw.params, e);
                        let cur = lw.b.read_var(*v);
                        let nv = lw.b.add(cur, x);
                        lw.b.assign(*v, nv);
                    }
                    (AggFunc::Count, Acc::Simple(v)) => {
                        let cur = lw.b.read_var(*v);
                        let nv = lw.b.add(cur, Atom::Long(1));
                        lw.b.assign(*v, nv);
                    }
                    (AggFunc::Avg(e), Acc::AvgPair(s, c)) => {
                        let x = lower_expr(&mut lw.b, env, &lw.params, e);
                        let x = lw.coerce_double(x);
                        let cur = lw.b.read_var(*s);
                        let nv = lw.b.add(cur, x);
                        lw.b.assign(*s, nv);
                        let cc = lw.b.read_var(*c);
                        let nc = lw.b.add(cc, Atom::Long(1));
                        lw.b.assign(*c, nc);
                    }
                    (AggFunc::Min(e), Acc::Simple(v)) | (AggFunc::Max(e), Acc::Simple(v)) => {
                        let x = lower_expr(&mut lw.b, env, &lw.params, e);
                        let x = lw.coerce_double(x);
                        let cur = lw.b.read_var(*v);
                        let better = if matches!(a, AggFunc::Min(_)) {
                            lw.b.lt(x.clone(), cur)
                        } else {
                            lw.b.gt(x.clone(), cur)
                        };
                        lw.if_then(better, |lw| lw.b.assign(*v, x));
                    }
                    _ => unreachable!("accumulator shape mismatch"),
                }
            }
        });
        let cols = aggs
            .iter()
            .zip(&accs)
            .map(|((n, _), acc)| {
                let atom = match acc {
                    Acc::Simple(v) => self.b.read_var(*v),
                    Acc::AvgPair(s, c) => {
                        let sv = self.b.read_var(*s);
                        let cv = self.b.read_var(*c);
                        let one = self.b.bin(dblab_ir::BinOp::Max, cv, Atom::Long(1));
                        let cd = self.b.un(UnOp::L2D, one);
                        self.b.div(sv, cd)
                    }
                };
                ColRef {
                    name: n.clone(),
                    atom,
                    prov: None,
                }
            })
            .collect();
        let env = RowEnv::new(cols);
        consumer(self, &env);
    }

    /// `COUNT(DISTINCT e)` per group: de-duplicate (group key, e) pairs in
    /// one hash table, then count per group in a second (the classical
    /// two-phase plan; Q16).
    fn aggregate_distinct(
        &mut self,
        plan: &QPlan,
        child: &QPlan,
        group_by: &[(Arc<str>, ScalarExpr)],
        aggs: &[(Arc<str>, AggFunc)],
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        assert!(
            aggs.len() == 1,
            "COUNT(DISTINCT) is only supported as the sole aggregate (TPC-H Q16)"
        );
        let distinct_expr = match &aggs[0].1 {
            AggFunc::CountDistinct(e) => e.clone(),
            _ => unreachable!(),
        };
        let child_cols = child.output_cols(self.schema);
        // Phase 1: dedupe on (group key..., distinct expr).
        let mut key_fields: Vec<FieldDef> = group_by
            .iter()
            .map(|(n, e)| FieldDef {
                name: n.clone(),
                ty: ir_type(e.ty(&child_cols)),
            })
            .collect();
        key_fields.push(FieldDef {
            name: "__d".into(),
            ty: ir_type(distinct_expr.ty(&child_cols)),
        });
        let dkey_sid = self.fresh_struct("Key", key_fields);
        self.rec_prov.insert(dkey_sid, {
            let mut pv: Vec<Option<(Arc<str>, usize)>> = group_by
                .iter()
                .map(|(n, _)| static_prov(plan, n, self.schema))
                .collect();
            pv.push(None);
            pv
        });
        let marker_sid = self.fresh_struct(
            "Mark",
            vec![FieldDef {
                name: "__cnt".into(),
                ty: Type::Long,
            }],
        );
        self.rec_prov.insert(marker_sid, vec![None]);
        let hint = self.estimate(child);
        let dd = self
            .b
            .hashmap_new(Type::Record(dkey_sid), Type::Record(marker_sid));
        if let Atom::Sym(s) = dd {
            self.b.annotate(s, Annot::SizeHint(hint));
        }
        self.produce(child, &mut |lw, env| {
            let mut args: Vec<Atom> = group_by
                .iter()
                .map(|(_, e)| lower_expr(&mut lw.b, env, &lw.params, e))
                .collect();
            args.push(lower_expr(&mut lw.b, env, &lw.params, &distinct_expr));
            let k = lw.b.struct_new(dkey_sid, args);
            let _ = lw.hashmap_get_or_init(dd.clone(), k, |lw| {
                lw.b.struct_new(marker_sid, vec![Atom::Long(0)])
            });
        });

        // Phase 2: count distinct pairs per group key.
        let mut fields: Vec<FieldDef> = group_by
            .iter()
            .map(|(n, e)| FieldDef {
                name: n.clone(),
                ty: ir_type(e.ty(&child_cols)),
            })
            .collect();
        fields.push(FieldDef {
            name: aggs[0].0.clone(),
            ty: Type::Long,
        });
        let cnt_sid = self.fresh_struct("Agg", fields);
        self.rec_prov.insert(cnt_sid, {
            let mut pv: Vec<Option<(Arc<str>, usize)>> = group_by
                .iter()
                .map(|(n, _)| static_prov(plan, n, self.schema))
                .collect();
            pv.push(None);
            pv
        });
        let (key_ty, key_sid) = if group_by.len() == 1 {
            (ir_type(group_by[0].1.ty(&child_cols)), None)
        } else {
            let sid = self.fresh_struct(
                "Key",
                group_by
                    .iter()
                    .enumerate()
                    .map(|(i, (_, e))| FieldDef {
                        name: format!("k{i}").into(),
                        ty: ir_type(e.ty(&child_cols)),
                    })
                    .collect(),
            );
            self.rec_prov.insert(sid, vec![None; group_by.len()]);
            (Type::Record(sid), Some(sid))
        };
        let hint2 = self.estimate(plan);
        let cnts = self.b.hashmap_new(key_ty, Type::Record(cnt_sid));
        if let Atom::Sym(s) = cnts {
            self.b.annotate(s, Annot::SizeHint(hint2));
        }
        let n_groups = group_by.len();
        self.hashmap_foreach(dd, |lw, k, _marker| {
            let prov = lw.rec_prov.get(&dkey_sid).cloned().unwrap_or_default();
            let key_atoms: Vec<Atom> = (0..n_groups)
                .map(|i| {
                    let a = lw.b.field_get(k.clone(), dkey_sid, i);
                    if let (Atom::Sym(sy), Some(Some((t, c)))) = (&a, prov.get(i)) {
                        lw.b.annotate(
                            *sy,
                            Annot::Column {
                                table: t.clone(),
                                field: *c,
                            },
                        );
                    }
                    a
                })
                .collect();
            let k2 = match key_sid {
                None => key_atoms[0].clone(),
                Some(sid) => lw.b.struct_new(sid, key_atoms.clone()),
            };
            let rec = lw.hashmap_get_or_init(cnts.clone(), k2, |lw| {
                let mut args = key_atoms.clone();
                args.push(Atom::Long(0));
                lw.b.struct_new(cnt_sid, args)
            });
            let cur = lw.b.field_get(rec.clone(), cnt_sid, n_groups);
            let nv = lw.b.add(cur, Atom::Long(1));
            lw.b.field_set(rec, cnt_sid, n_groups, nv);
        });

        self.hashmap_foreach(cnts, |lw, _k, rec| {
            let prov = lw.rec_prov.get(&cnt_sid).cloned().unwrap_or_default();
            let mut cols = Vec::new();
            for (i, (n, _)) in group_by.iter().enumerate() {
                let atom = lw.b.field_get(rec.clone(), cnt_sid, i);
                let pv = prov.get(i).cloned().flatten();
                if let (Atom::Sym(sy), Some((t, c))) = (&atom, &pv) {
                    lw.b.annotate(
                        *sy,
                        Annot::Column {
                            table: t.clone(),
                            field: *c,
                        },
                    );
                }
                cols.push(ColRef {
                    name: n.clone(),
                    atom,
                    prov: pv,
                });
            }
            let atom = lw.b.field_get(rec.clone(), cnt_sid, n_groups);
            cols.push(ColRef {
                name: aggs[0].0.clone(),
                atom,
                prov: None,
            });
            let env = RowEnv::new(cols);
            consumer(lw, &env);
        });
    }

    // ------------------------------------------------------------------
    // Sorting
    // ------------------------------------------------------------------

    fn sort(
        &mut self,
        child: &QPlan,
        keys: &[(ScalarExpr, SortDir)],
        consumer: &mut dyn FnMut(&mut Self, &RowEnv),
    ) {
        let child_cols = child.output_cols(self.schema);
        let fields: Vec<FieldDef> = child_cols
            .iter()
            .map(|(n, t)| FieldDef {
                name: n.clone(),
                ty: ir_type(*t),
            })
            .collect();
        let sid = self.fresh_struct("Rec", fields);
        let hint = self.estimate(child);
        // Provenance: all verbatim columns keep their origin.
        self.rec_prov.insert(
            sid,
            child_cols
                .iter()
                .map(|(n, _)| static_prov(child, n, self.schema))
                .collect(),
        );

        let lst = self.b.list_new(Type::Record(sid));
        if let Atom::Sym(s) = lst {
            self.b.annotate(s, Annot::SizeHint(hint));
        }
        self.produce(child, &mut |lw, env| {
            let args = child_cols
                .iter()
                .map(|(n, _)| env.lookup(n).atom.clone())
                .collect();
            let rec = lw.b.struct_new(sid, args);
            if let Atom::Sym(s) = rec {
                lw.b.annotate(s, Annot::SizeHint(hint));
            }
            lw.b.list_append(lst.clone(), rec);
        });

        let n = self.b.list_size(lst.clone());
        let arr = self.b.array_new(Type::Record(sid), n.clone());
        let idx = self.b.decl_var(Atom::Int(0));
        self.list_foreach(lst, |lw, rec| {
            let i = lw.b.read_var(idx);
            lw.b.array_set(arr.clone(), i.clone(), rec);
            let i1 = lw.b.add(i, Atom::Int(1));
            lw.b.assign(idx, i1);
        });

        // Comparator block over two bound records.
        let a = self.b.bind(Type::Record(sid));
        let bb = self.b.bind(Type::Record(sid));
        self.b.scope_push();
        let env_a = self.env_from_record(&Atom::Sym(a), sid);
        let env_b = self.env_from_record(&Atom::Sym(bb), sid);
        let res = self.cmp_chain(&env_a, &env_b, keys);
        let cmp = self.b.scope_pop(res);
        self.b.emit_unit(Expr::SortArray {
            arr: arr.clone(),
            len: n.clone(),
            a,
            b: bb,
            cmp,
        });

        self.for_range(Atom::Int(0), n, |lw, i| {
            let rec = lw.b.array_get(arr.clone(), i);
            let env = lw.env_from_record(&rec, sid);
            consumer(lw, &env);
        });
    }

    fn cmp_chain(
        &mut self,
        env_a: &RowEnv,
        env_b: &RowEnv,
        keys: &[(ScalarExpr, SortDir)],
    ) -> Atom {
        if keys.is_empty() {
            return Atom::Int(0);
        }
        let (expr, dir) = &keys[0];
        let ka = lower_expr(&mut self.b, env_a, &self.params, expr);
        let kb = lower_expr(&mut self.b, env_b, &self.params, expr);
        let (lo, hi) = if *dir == SortDir::Asc {
            (ka, kb)
        } else {
            (kb, ka)
        };
        let (lt, gt) = if self.b.atom_type(&lo) == Type::String {
            let c = self.b.prim(PrimOp::StrCmp, vec![lo, hi]);
            let lt = self.b.lt(c.clone(), Atom::Int(0));
            let gt = self.b.gt(c, Atom::Int(0));
            (lt, gt)
        } else {
            let lt = self.b.lt(lo.clone(), hi.clone());
            let gt = self.b.gt(lo, hi);
            (lt, gt)
        };
        // if (lt) -1 else if (gt) 1 else <rest>
        self.b.scope_push();
        let neg = self.b.scope_pop(Atom::Int(-1));
        self.b.scope_push();
        {
            self.b.scope_push();
            let one = self.b.scope_pop(Atom::Int(1));
            self.b.scope_push();
            let rest = self.cmp_chain(env_a, env_b, &keys[1..]);
            let rest_b = self.b.scope_pop(rest);
            let inner = self.b.emit(
                Type::Int,
                Expr::If {
                    cond: gt,
                    then_b: one,
                    else_b: rest_b,
                },
            );
            let else_b = self.b.scope_pop(inner);
            self.b.emit(
                Type::Int,
                Expr::If {
                    cond: lt,
                    then_b: neg,
                    else_b,
                },
            )
        }
    }
}

/// Default (outer-join padding) atom per column type.
fn default_atom(t: ColType) -> Atom {
    match t {
        ColType::Double => Atom::double(0.0),
        ColType::Long => Atom::Long(0),
        ColType::String => Atom::Str("".into()),
        ColType::Bool => Atom::Bool(false),
        _ => Atom::Int(0),
    }
}

fn sum_ty(e: &ScalarExpr, cols: &[(Arc<str>, ColType)]) -> Type {
    match e.ty(cols) {
        ColType::Double => Type::Double,
        _ => Type::Long,
    }
}

/// Provenance of a single-column group key.
fn group_col_prov(plan: &QPlan, schema: &Schema) -> Option<(Arc<str>, usize)> {
    if let QPlan::Agg {
        child, group_by, ..
    } = plan
    {
        if group_by.len() == 1 {
            if let ScalarExpr::Col(n) = &group_by[0].1 {
                return static_prov(child, n, schema);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;
    use dblab_frontend::qplan::AggFunc::*;

    fn schema() -> Schema {
        let mut s = dblab_tpch::tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    }

    fn lower(prog: &QueryProgram, cfg: &StackConfig) -> Program {
        lower_program(prog, &schema(), cfg)
    }

    #[test]
    fn q6_like_plan_lowers_to_valid_maplist() {
        let plan = QPlan::scan("lineitem")
            .select(col("l_quantity").lt(lit_d(24.0)))
            .agg(
                vec![],
                vec![(
                    "revenue",
                    Sum(col("l_extendedprice").mul(col("l_discount"))),
                )],
            );
        let p = lower(&QueryProgram::new(plan), &StackConfig::level2());
        let violations = dblab_ir::level::validate(&p);
        assert!(violations.is_empty(), "{violations:?}");
        // A pure scan-filter-aggregate pipeline needs no hash tables.
        let has_hash = p
            .body
            .stmts
            .iter()
            .any(|st| matches!(st.expr, Expr::HashMapNew { .. } | Expr::MultiMapNew { .. }));
        assert!(!has_hash);
    }

    #[test]
    fn join_lowers_to_multimap_build_and_probe() {
        let plan = QPlan::scan("customer")
            .hash_join(
                QPlan::scan("orders"),
                JoinKind::Inner,
                vec![col("c_custkey")],
                vec![col("o_custkey")],
            )
            .agg(vec![], vec![("n", Count)]);
        let p = lower(&QueryProgram::new(plan), &StackConfig::level2());
        let text = dblab_ir::printer::print_program(&p);
        assert!(text.contains("new MultiMap"), "{text}");
        assert!(text.contains("addBinding"), "{text}");
        assert!(dblab_ir::level::validate(&p).is_empty());
    }

    #[test]
    fn index_inference_elides_the_hash_table() {
        let plan = QPlan::scan("customer")
            .hash_join(
                QPlan::scan("orders"),
                JoinKind::Inner,
                vec![col("c_custkey")],
                vec![col("o_custkey")],
            )
            .agg(vec![], vec![("n", Count)]);
        let p = lower(&QueryProgram::new(plan), &StackConfig::level5());
        let text = dblab_ir::printer::print_program(&p);
        assert!(!text.contains("new MultiMap"), "{text}");
        assert!(text.contains("loadIndex"), "{text}");
    }

    #[test]
    fn grouped_aggregation_uses_hashmap_with_annotations() {
        let plan = QPlan::scan("orders").agg(
            vec![("k", col("o_custkey"))],
            vec![("total", Sum(col("o_totalprice")))],
        );
        let p = lower(&QueryProgram::new(plan), &StackConfig::level2());
        let hm = p
            .body
            .stmts
            .iter()
            .find(|st| matches!(st.expr, Expr::HashMapNew { .. }))
            .expect("hash map");
        assert!(p.annots.size_hint(hm.sym).is_some());
        assert!(
            p.annots.dense_key(hm.sym).is_some(),
            "o_custkey is a dense int key"
        );
    }

    #[test]
    fn sort_lowers_to_list_array_sort() {
        let plan = QPlan::scan("nation").sort(vec![(col("n_name"), SortDir::Asc)]);
        let p = lower(&QueryProgram::new(plan), &StackConfig::level2());
        let text = dblab_ir::printer::print_program(&p);
        assert!(text.contains("new List"), "{text}");
        assert!(text.contains("sort("), "{text}");
    }

    #[test]
    fn timer_wraps_query_not_loading() {
        let plan = QPlan::scan("nation").agg(vec![], vec![("n", Count)]);
        let p = lower(&QueryProgram::new(plan), &StackConfig::level2());
        let pos = |needle: &str| {
            p.body
                .stmts
                .iter()
                .position(|st| format!("{:?}", st.expr).contains(needle))
                .unwrap_or_else(|| panic!("{needle} not found"))
        };
        assert!(pos("LoadTable") < pos("TimerStart"));
        assert!(pos("TimerStart") < pos("TimerStop"));
    }

    #[test]
    fn scalar_lets_bind_params() {
        let prog = QueryProgram::new(
            QPlan::scan("nation")
                .select(col("n_nationkey").gt(param("thr")))
                .agg(vec![], vec![("n", Count)]),
        )
        .with_let(
            "thr",
            QPlan::scan("nation").agg(vec![], vec![("a", Avg(col("n_nationkey")))]),
        );
        let p = lower(&prog, &StackConfig::level2());
        assert!(dblab_ir::level::validate(&p).is_empty());
    }

    #[test]
    fn all_22_queries_lower_at_every_config() {
        for cfg in StackConfig::table3() {
            for (name, prog) in dblab_tpch::queries::all() {
                let p = lower(&prog, &cfg);
                assert!(p.body.size() > 10, "{name} produced a trivial program");
                if cfg.levels == 2 {
                    let violations = dblab_ir::level::validate(&p);
                    assert!(violations.is_empty(), "{name}: {violations:?}");
                }
            }
        }
    }
}
