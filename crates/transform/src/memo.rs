//! Per-pass IR memoization — layer one of the memoized compilation
//! pipeline.
//!
//! [`crate::pass::apply_one`] is a pure function of `(pass, program,
//! relevant config bits, schema)`: PR 1 made that a checked contract
//! (rogue passes are rejected), which is exactly what licenses caching
//! its results. The key is
//!
//! ```text
//! (pass name, structural program hash, pass-relevant cfg bits ⊕ schema)
//! ```
//!
//! * the **program hash** is [`dblab_ir::hash::program_hash`] —
//!   structural, pointer-free, stable across runs;
//! * the **cfg fingerprint** is per-pass ([`crate::pass::Pass::cfg_key`]):
//!   a pass keys only on the configuration bits its rewrite actually
//!   reads, so a level-4 compile warms the shared pipeline prefix for a
//!   level-5 compile instead of missing on irrelevant flag diffs
//!   (over-keying), while a pass like field-removal still misses when
//!   *its* bit flips (under-keying is caught by the transparency tests);
//! * the **schema fingerprint** covers the other `PassCtx` input —
//!   table/column definitions, keys and cardinality statistics all feed
//!   specialization decisions, so two scale factors never share entries.
//!
//! The cache is process-wide and `Sync` (the bench harness compiles
//! queries from scoped threads), bounded by [`CAPACITY`] entries with a
//! wholesale clear on overflow — memoization is an optimization, and a
//! dumb eviction keeps it transparently correct.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dblab_catalog::Schema;
use dblab_ir::hash::StableHasher;
use dblab_ir::Program;

/// Entries retained before the cache is cleared wholesale.
pub const CAPACITY: usize = 8192;

/// The memo key. `pass` is the registry name (pass identity is its name:
/// the registry owns uniqueness), `program` the structural input hash,
/// `inputs` the pass-relevant configuration and schema fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PassKey {
    pub pass: &'static str,
    pub program: u64,
    pub inputs: u64,
}

static CACHE: OnceLock<Mutex<HashMap<PassKey, Program>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<PassKey, Program>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Cumulative process-wide counters (monotone; tests assert on deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a share of all lookups, 0.0 on an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter movement since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Current pass-cache counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Scoped statistics: per-pipeline counters
// ---------------------------------------------------------------------

/// An independent hit/miss tally for one pipeline sweep.
///
/// The global [`stats`] counters are process-wide: two sweeps compiling
/// concurrently (the schedule-permutation harness fans orderings across
/// threads) would each see the *sum* of both sweeps' traffic and report
/// dishonest per-sweep hit rates. A `StatsScope` fixes that: install it on
/// a thread with [`StatsScope::enter`] and every [`lookup`] made while the
/// guard lives is tallied into this scope *as well as* the global
/// counters. One scope may be entered from several worker threads at once
/// (the counters are atomics behind an `Arc`), and scopes nest — a lookup
/// counts into every scope installed on its thread.
#[derive(Debug, Default)]
pub struct StatsScope {
    hits: AtomicU64,
    misses: AtomicU64,
}

thread_local! {
    static SCOPES: RefCell<Vec<Arc<StatsScope>>> = const { RefCell::new(Vec::new()) };
}

impl StatsScope {
    pub fn new() -> Arc<StatsScope> {
        Arc::new(StatsScope::default())
    }

    /// Install this scope on the current thread until the guard drops.
    pub fn enter(self: &Arc<Self>) -> ScopeGuard {
        SCOPES.with(|s| s.borrow_mut().push(Arc::clone(self)));
        ScopeGuard {
            scope: self.clone(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// This scope's own tally (unaffected by other concurrent scopes).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Keeps a [`StatsScope`] installed on the entering thread; un-installs
/// (the most recent matching scope) on drop. Deliberately `!Send`: the
/// install lives in the entering thread's local state, so dropping the
/// guard on another thread could never un-install it — share the
/// `Arc<StatsScope>` across threads and `enter()` on each instead.
pub struct ScopeGuard {
    scope: Arc<StatsScope>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            let mut v = s.borrow_mut();
            if let Some(pos) = v.iter().rposition(|x| Arc::ptr_eq(x, &self.scope)) {
                v.remove(pos);
            }
        });
    }
}

fn tally(hit: bool) {
    let (global, pick): (&AtomicU64, fn(&StatsScope) -> &AtomicU64) = if hit {
        (&HITS, |s| &s.hits)
    } else {
        (&MISSES, |s| &s.misses)
    };
    global.fetch_add(1, Ordering::Relaxed);
    SCOPES.with(|s| {
        for scope in s.borrow().iter() {
            pick(scope).fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Number of memoized stage outputs currently retained.
pub fn entry_count() -> usize {
    cache().lock().unwrap().len()
}

/// Drop every memoized stage output (counters are left alone — they are
/// cumulative by contract). Benches use this to measure genuinely cold
/// compiles from a warm process.
pub fn clear() {
    cache().lock().unwrap().clear();
}

/// Look a stage output up, counting the hit or miss (globally and into
/// every [`StatsScope`] installed on this thread).
pub fn lookup(key: &PassKey) -> Option<Program> {
    let got = cache().lock().unwrap().get(key).cloned();
    tally(got.is_some());
    got
}

/// Record a freshly computed stage output.
pub fn insert(key: PassKey, program: Program) {
    let mut map = cache().lock().unwrap();
    if map.len() >= CAPACITY {
        map.clear();
    }
    map.insert(key, program);
}

/// Fingerprint of everything a pass can read off the schema: names,
/// column types, key annotations and the cardinality statistics that
/// drive pool sizing, dense-key detection and dictionary decisions.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(schema.tables.len());
    for t in &schema.tables {
        t.name.hash(&mut h);
        h.write_usize(t.columns.len());
        for c in &t.columns {
            c.name.hash(&mut h);
            c.ty.hash(&mut h);
        }
        t.primary_key.hash(&mut h);
        h.write_usize(t.foreign_keys.len());
        for fk in &t.foreign_keys {
            fk.column.hash(&mut h);
            fk.ref_table.hash(&mut h);
        }
        t.stats.row_count.hash(&mut h);
        t.stats.int_max.hash(&mut h);
        t.stats.distinct.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_catalog::{ColType, TableDef};

    fn schema() -> Schema {
        Schema::new(vec![TableDef::new(
            "t",
            vec![("a", ColType::Int), ("s", ColType::String)],
        )
        .with_primary_key(&["a"])])
    }

    #[test]
    fn schema_fingerprint_sees_stats() {
        let a = schema();
        let mut b = schema();
        assert_eq!(schema_fingerprint(&a), schema_fingerprint(&b));
        b.table_mut("t").stats.row_count = 99;
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&b));
    }

    #[test]
    fn schema_fingerprint_sees_keys_and_types() {
        let a = schema();
        let b = Schema::new(vec![TableDef::new(
            "t",
            vec![("a", ColType::Int), ("s", ColType::String)],
        )]);
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&b), "pk");
        let c = Schema::new(vec![TableDef::new(
            "t",
            vec![("a", ColType::Long), ("s", ColType::String)],
        )
        .with_primary_key(&["a"])]);
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&c), "type");
    }

    #[test]
    fn stats_move_on_lookup() {
        let key = PassKey {
            pass: "memo-unit-test",
            program: 0xdead_beef,
            inputs: 1,
        };
        let before = stats();
        assert!(lookup(&key).is_none());
        let mid = stats();
        assert!(mid.misses > before.misses);
        insert(
            key.clone(),
            Program {
                structs: dblab_ir::types::StructRegistry::new(),
                body: dblab_ir::Block::default(),
                sym_types: vec![],
                level: dblab_ir::Level::MapList,
                annots: Default::default(),
            },
        );
        assert!(lookup(&key).is_some());
        let after = stats();
        assert!(after.hits > mid.hits);
        assert!(after.since(&before).hits >= 1);
    }

    fn empty_program() -> Program {
        Program {
            structs: dblab_ir::types::StructRegistry::new(),
            body: dblab_ir::Block::default(),
            sym_types: vec![],
            level: dblab_ir::Level::MapList,
            annots: Default::default(),
        }
    }

    #[test]
    fn scoped_stats_tally_only_their_own_lookups() {
        let key = PassKey {
            pass: "memo-scope-test",
            program: 0xfeed_f00d,
            inputs: 7,
        };
        insert(key.clone(), empty_program());
        let a = StatsScope::new();
        let b = StatsScope::new();
        {
            let _ga = a.enter();
            assert!(lookup(&key).is_some());
        }
        {
            let _gb = b.enter();
            assert!(lookup(&key).is_some());
            assert!(lookup(&key).is_some());
        }
        // Outside any scope: global only.
        assert!(lookup(&key).is_some());
        assert_eq!(a.stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(b.stats(), CacheStats { hits: 2, misses: 0 });
    }

    #[test]
    fn concurrent_scopes_are_independent() {
        // Two sweeps on two threads, each with its own scope: per-sweep
        // tallies must not bleed into one another even though the cache
        // and the global counters are shared.
        let mk = |i: u64| PassKey {
            pass: "memo-scope-conc",
            program: i,
            inputs: 0,
        };
        insert(mk(1), empty_program());
        let a = StatsScope::new();
        let b = StatsScope::new();
        std::thread::scope(|s| {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let _g = a.enter();
                for _ in 0..50 {
                    assert!(lookup(&mk(1)).is_some());
                }
            });
            s.spawn(move || {
                let _g = b.enter();
                for i in 0..30 {
                    assert!(lookup(&mk(1000 + i)).is_none());
                }
            });
        });
        assert_eq!(
            a.stats(),
            CacheStats {
                hits: 50,
                misses: 0
            }
        );
        assert_eq!(
            b.stats(),
            CacheStats {
                hits: 0,
                misses: 30
            }
        );
    }

    #[test]
    fn scopes_nest_and_uninstall_on_drop() {
        let key = PassKey {
            pass: "memo-scope-nest",
            program: 42,
            inputs: 0,
        };
        let outer = StatsScope::new();
        let inner = StatsScope::new();
        let _go = outer.enter();
        {
            let _gi = inner.enter();
            assert!(lookup(&key).is_none());
        }
        assert!(lookup(&key).is_none());
        assert_eq!(inner.stats().misses, 1, "inner guard dropped");
        assert_eq!(outer.stats().misses, 2, "outer sees both");
    }
}
