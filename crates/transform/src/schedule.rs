//! The pass-commutation DAG and schedule permutation.
//!
//! PR 1 made pass *membership* data ([`Pass::applies`]) and PR 3 made
//! re-running the stack cheap (the per-pass memo). This module makes pass
//! *order* data too: the linear registry becomes a declared dependency
//! DAG, and any topological order of that DAG is a valid compilation
//! schedule for the contract-checked driver ([`crate::stack`]).
//!
//! Two kinds of edges order the DAG:
//!
//! * **Level edges** are derived mechanically from each pass's declared
//!   [`Level`] contract: lowerings are ordered by their source level
//!   (transformation cohesion gives at most one lowering per level, so
//!   this is a total order on the lowerings), and a non-floating pass
//!   must sit inside the window where the program *is* at its source
//!   level — after the lowering producing that level, before the lowering
//!   consuming it.
//! * **Declared edges** ([`Pass::after`] / [`Pass::before`]) are semantic
//!   claims two passes do not commute. They are the only hand-written
//!   ordering information left in the stack.
//!
//! Everything the DAG leaves unordered is thereby **declared commuting**:
//! swapping an unordered adjacent pair must produce `program_hash`-equal
//! IR. That claim is checkable — [`Scheduler::verify_commutation`] runs
//! both orders of every unordered pair over a program corpus and reports
//! any pair whose outputs diverge, so a forgotten `after` edge is
//! surfaced by machinery rather than waiting for a miscompiled query.
//! (The check runs each pair after its DAG-*ancestor* prefix — one
//! well-defined context per pair; non-commutation that only appears
//! after some *unrelated* pass has rewritten the program is outside its
//! reach and is instead hunted by the schedule-differential suite, which
//! sweeps whole sampled schedules.) The schedule-differential test suite
//! and the `schedules` bench sweep sampled topological orders
//! ([`Scheduler::sample_orders`], seeded and deterministic) through the
//! full driver, where every per-stage contract check still applies.

use std::collections::HashMap;

use dblab_catalog::Schema;
use dblab_frontend::qplan::QueryProgram;
use dblab_ir::hash::program_hash;
use dblab_ir::{Level, Program};

use crate::config::StackConfig;
use crate::pass::{self, advance_ceiling, Frontend, Pass, PassCtx, PassKind, PlanLowering};

/// Why an edge exists in the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Derived from the passes' level contracts (source/target/floats).
    Level,
    /// Declared via [`Pass::after`] / [`Pass::before`].
    Declared,
}

/// One ordering constraint: the pass at `from` runs before the one at
/// `to` (indices into [`Scheduler::names`]).
#[derive(Debug, Clone, Copy)]
pub struct DagEdge {
    pub from: usize,
    pub to: usize,
    pub kind: EdgeKind,
}

/// The dependency DAG over the passes a configuration selects, plus the
/// machinery to enumerate, sample and validate schedules over it.
pub struct Scheduler {
    /// Selected passes, in registry (baseline) order.
    passes: Vec<Box<dyn Pass>>,
    names: Vec<&'static str>,
    cfg: StackConfig,
    edges: Vec<DagEdge>,
    /// `reach[u][v]`: there is a directed path `u -> v`.
    reach: Vec<Vec<bool>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("names", &self.names)
            .field("edges", &self.edge_names())
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Build the DAG for the passes `cfg` selects from [`pass::registry`].
    pub fn from_registry(cfg: &StackConfig) -> Result<Scheduler, String> {
        Scheduler::from_passes(pass::registry(), cfg)
    }

    /// Build the DAG over an explicit pass list (tests inject rogue or
    /// mis-declared passes through this seam). The list's order is the
    /// baseline schedule; passes whose `applies(cfg)` is false are
    /// dropped first, exactly like the driver does.
    ///
    /// Soundness checks performed here:
    /// * declared `after`/`before` names must exist in the pass list
    ///   (selected or not) — a typo is an error, not a silent no-edge;
    /// * no self-edges;
    /// * the combined edge set must be acyclic (a declared edge that
    ///   contradicts the level structure surfaces as a cycle);
    /// * the baseline order must itself be a valid schedule.
    pub fn from_passes(all: Vec<Box<dyn Pass>>, cfg: &StackConfig) -> Result<Scheduler, String> {
        let known: Vec<&'static str> = all.iter().map(|p| p.name()).collect();
        let passes: Vec<Box<dyn Pass>> = all.into_iter().filter(|p| p.applies(cfg)).collect();
        let names: Vec<&'static str> = passes.iter().map(|p| p.name()).collect();
        let index: HashMap<&'static str, usize> =
            names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        if index.len() != names.len() {
            return Err("duplicate pass names in the registry".into());
        }

        let mut edges: Vec<DagEdge> = Vec::new();
        let add = |from: usize, to: usize, kind: EdgeKind, edges: &mut Vec<DagEdge>| {
            if !edges.iter().any(|e| e.from == from && e.to == to) {
                edges.push(DagEdge { from, to, kind });
            }
        };

        // Level edges. Lowerings are totally ordered by source level.
        let lowerings: Vec<usize> = (0..passes.len())
            .filter(|&i| passes[i].kind() == PassKind::Lowering)
            .collect();
        for &a in &lowerings {
            for &b in &lowerings {
                if passes[a].source() < passes[b].source() {
                    add(a, b, EdgeKind::Level, &mut edges);
                }
            }
        }
        // A non-floating, non-lowering pass at level X runs while the
        // program is at X: after the lowering producing X, before any
        // lowering leaving X or below.
        for i in 0..passes.len() {
            let p = &passes[i];
            if p.floats() || p.kind() == PassKind::Lowering {
                continue;
            }
            let x = p.source();
            for &l in &lowerings {
                if passes[l].target() <= x {
                    add(l, i, EdgeKind::Level, &mut edges);
                }
                if passes[l].source() >= x {
                    add(i, l, EdgeKind::Level, &mut edges);
                }
            }
        }

        // Declared edges.
        for i in 0..passes.len() {
            for &n in passes[i].after() {
                match index.get(n) {
                    Some(&j) => add(j, i, EdgeKind::Declared, &mut edges),
                    None if known.contains(&n) => {} // disabled by cfg: vacuous
                    None => {
                        return Err(format!(
                            "pass {} declares `after` an unknown pass `{n}`",
                            names[i]
                        ))
                    }
                }
            }
            for &n in passes[i].before() {
                match index.get(n) {
                    Some(&j) => add(i, j, EdgeKind::Declared, &mut edges),
                    None if known.contains(&n) => {}
                    None => {
                        return Err(format!(
                            "pass {} declares `before` an unknown pass `{n}`",
                            names[i]
                        ))
                    }
                }
            }
        }
        if let Some(e) = edges.iter().find(|e| e.from == e.to) {
            return Err(format!("pass {} declares an edge to itself", names[e.from]));
        }

        let mut succ = vec![Vec::new(); passes.len()];
        for e in &edges {
            succ[e.from].push(e.to);
        }

        // Transitive closure (DFS from every node) + cycle detection.
        let n = passes.len();
        let mut reach: Vec<Vec<bool>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = vec![false; n];
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for &v in &succ[u] {
                    if !row[v] {
                        row[v] = true;
                        stack.push(v);
                    }
                }
            }
            reach.push(row);
        }
        for (s, row) in reach.iter().enumerate() {
            if row[s] {
                let cycle: Vec<&str> = row
                    .iter()
                    .enumerate()
                    .filter(|&(v, r)| *r && reach[v][s])
                    .map(|(v, _)| names[v])
                    .collect();
                return Err(format!(
                    "pass dependency cycle through {{{}}} — the declared edges \
                     contradict each other or the level structure",
                    cycle.join(", ")
                ));
            }
        }

        let sched = Scheduler {
            passes,
            names,
            cfg: cfg.clone(),
            edges,
            reach,
        };
        let baseline = sched.baseline();
        sched.validate_order(&baseline).map_err(|e| {
            format!("the baseline (registry) order is itself not a valid schedule: {e}")
        })?;
        Ok(sched)
    }

    /// Selected pass names, baseline (registry) order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// The configuration this DAG was built for.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// The baseline schedule: registry order restricted to the selection.
    pub fn baseline(&self) -> Vec<&'static str> {
        self.names.clone()
    }

    /// Every edge, as `(from, to, kind)` name pairs.
    pub fn edge_names(&self) -> Vec<(&'static str, &'static str, EdgeKind)> {
        self.edges
            .iter()
            .map(|e| (self.names[e.from], self.names[e.to], e.kind))
            .collect()
    }

    pub(crate) fn pass_by_name(&self, name: &str) -> Option<&dyn Pass> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.passes[i].as_ref())
    }

    /// All pairs the DAG leaves unordered — the declared-commuting pairs
    /// the soundness check holds to hash-equality. Pairs are reported in
    /// baseline order.
    pub fn commuting_pairs(&self) -> Vec<(&'static str, &'static str)> {
        let n = self.names.len();
        let mut out = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if !self.reach[a][b] && !self.reach[b][a] {
                    out.push((self.names[a], self.names[b]));
                }
            }
        }
        out
    }

    /// Exact number of valid schedules (topological orders), or `None`
    /// when the selection is too large for the bitmask DP (> 24 passes).
    pub fn order_count(&self) -> Option<u128> {
        let n = self.names.len();
        if n > 24 {
            return None;
        }
        // Predecessor masks: a node is available once all predecessors are
        // placed.
        let mut pred_mask = vec![0u32; n];
        for e in &self.edges {
            pred_mask[e.to] |= 1 << e.from;
        }
        fn count(mask: u32, n: usize, pred: &[u32], memo: &mut HashMap<u32, u128>) -> u128 {
            if mask == (1u32 << n) - 1 {
                return 1;
            }
            if let Some(&c) = memo.get(&mask) {
                return c;
            }
            let mut total = 0u128;
            for v in 0..n {
                if mask & (1 << v) == 0 && pred[v] & mask == pred[v] {
                    total += count(mask | (1 << v), n, pred, memo);
                }
            }
            memo.insert(mask, total);
            total
        }
        Some(count(0, n, &pred_mask, &mut HashMap::new()))
    }

    /// Sample up to `k` **distinct** valid schedules, deterministically
    /// from `seed` (random Kahn's algorithm + dedup, with a bounded
    /// trial budget). Returns fewer than `k` when the DAG has fewer
    /// distinct topological orders — or, on pathologically skewed DAGs,
    /// when an order's sampling probability is so small the budget
    /// misses it (random Kahn's is not uniform; for the registry-sized
    /// DAGs this crate builds, the budget saturates comfortably).
    ///
    /// Panics (loudly, instead of silently corrupting its bitmasks) on
    /// selections larger than 64 passes — far above the registry, but
    /// [`Scheduler::from_passes`] accepts arbitrary lists.
    pub fn sample_orders(&self, seed: u64, k: usize) -> Vec<Vec<&'static str>> {
        let n = self.names.len();
        assert!(
            n <= 64,
            "schedule sampling supports at most 64 passes (selection has {n})"
        );
        let mut pred_mask = vec![0u64; n];
        for e in &self.edges {
            pred_mask[e.to] |= 1 << e.from;
        }
        let mut rng = SplitMix(seed);
        let mut seen: Vec<Vec<usize>> = Vec::new();
        let mut out = Vec::new();
        let budget = k.saturating_mul(64) + 256;
        for _ in 0..budget {
            if out.len() == k {
                break;
            }
            let mut placed = 0u64;
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                let avail: Vec<usize> = (0..n)
                    .filter(|&v| placed & (1 << v) == 0 && pred_mask[v] & placed == pred_mask[v])
                    .collect();
                let v = avail[rng.below(avail.len())];
                placed |= 1 << v;
                order.push(v);
            }
            if !seen.contains(&order) {
                seen.push(order.clone());
                out.push(order.iter().map(|&i| self.names[i]).collect());
            }
        }
        out
    }

    /// Is `order` a valid schedule? Checks that it is a permutation of
    /// the selection, respects every DAG edge, and — independently — that
    /// the level simulation succeeds (every non-floating pass meets the
    /// program at its declared source level).
    pub fn validate_order(&self, order: &[&str]) -> Result<(), String> {
        let n = self.names.len();
        if order.len() != n {
            return Err(format!(
                "schedule has {} passes, the selection has {n}",
                order.len()
            ));
        }
        let mut position = vec![usize::MAX; n];
        for (pos, name) in order.iter().enumerate() {
            let i = self
                .names
                .iter()
                .position(|x| x == name)
                .ok_or_else(|| format!("schedule names unselected pass `{name}`"))?;
            if position[i] != usize::MAX {
                return Err(format!("schedule repeats pass `{name}`"));
            }
            position[i] = pos;
        }
        for e in &self.edges {
            if position[e.from] > position[e.to] {
                return Err(format!(
                    "schedule violates {} edge {} -> {}",
                    match e.kind {
                        EdgeKind::Level => "level",
                        EdgeKind::Declared => "declared",
                    },
                    self.names[e.from],
                    self.names[e.to]
                ));
            }
        }
        // Level simulation, mirroring pass::check_pipeline on an arbitrary
        // order (defense in depth: level edges should make this
        // unreachable, but the simulation is the ground truth).
        let mut level = Level::MapList;
        for name in order {
            let p = self.pass_by_name(name).expect("validated above");
            if !p.floats() && p.source() != level {
                return Err(format!(
                    "pass {} expects {} input but the schedule hands it {}",
                    p.name(),
                    p.source(),
                    level
                ));
            }
            if p.kind() == PassKind::Lowering {
                level = level.max(p.target());
            }
        }
        Ok(())
    }

    /// A valid schedule in which `a` runs immediately before `b`:
    /// ancestors of either first (baseline order), then `a`, then `b`,
    /// then everything else (baseline order). Errors when the DAG orders
    /// the pair — adjacency in both directions only exists for unordered
    /// pairs.
    pub fn adjacent_order(&self, a: &str, b: &str) -> Result<Vec<&'static str>, String> {
        let ia = self
            .names
            .iter()
            .position(|n| *n == a)
            .ok_or_else(|| format!("unknown pass `{a}`"))?;
        let ib = self
            .names
            .iter()
            .position(|n| *n == b)
            .ok_or_else(|| format!("unknown pass `{b}`"))?;
        if self.reach[ia][ib] || self.reach[ib][ia] {
            return Err(format!(
                "the DAG orders `{a}` and `{b}` — they cannot be swapped"
            ));
        }
        let n = self.names.len();
        let mut order = Vec::with_capacity(n);
        for v in 0..n {
            if self.reach[v][ia] || self.reach[v][ib] {
                order.push(self.names[v]);
            }
        }
        order.push(self.names[ia]);
        order.push(self.names[ib]);
        for v in 0..n {
            if v != ia && v != ib && !(self.reach[v][ia] || self.reach[v][ib]) {
                order.push(self.names[v]);
            }
        }
        debug_assert!(self.validate_order(&order).is_ok());
        Ok(order)
    }

    /// Run the common DAG-ancestor prefix of `{a, b}`, then `a; b` and
    /// `b; a`, and compare the resulting IR by [`program_hash`]. `None`
    /// means the pair commutes on this program; `Some(description)` is a
    /// counterexample (the pair needs a declared edge).
    pub fn commutation_counterexample(
        &self,
        a: &str,
        b: &str,
        prog: &QueryProgram,
        schema: &Schema,
    ) -> Result<Option<String>, String> {
        let ia = self
            .names
            .iter()
            .position(|n| *n == a)
            .ok_or_else(|| format!("unknown pass `{a}`"))?;
        let ib = self
            .names
            .iter()
            .position(|n| *n == b)
            .ok_or_else(|| format!("unknown pass `{b}`"))?;
        if self.reach[ia][ib] || self.reach[ib][ia] {
            return Err(format!("the DAG orders `{a}` and `{b}`"));
        }
        let ctx = PassCtx {
            schema,
            cfg: &self.cfg,
        };
        let fe = PlanLowering(prog);
        let (_, lowered) = crate::stack::lower_frontend(&fe as &dyn Frontend, &ctx);
        self.counterexample_from(ia, ib, &lowered, schema)
    }

    /// [`Scheduler::commutation_counterexample`] from an already-lowered
    /// program (so a corpus sweep pays the front-end once per program,
    /// not once per pair).
    fn counterexample_from(
        &self,
        ia: usize,
        ib: usize,
        lowered: &Program,
        schema: &Schema,
    ) -> Result<Option<String>, String> {
        let (a, b) = (self.names[ia], self.names[ib]);
        let ctx = PassCtx {
            schema,
            cfg: &self.cfg,
        };
        let mut p = lowered.clone();
        // Shared prefix: every ancestor of either pass, baseline order.
        let mut ceiling = Level::MapList;
        for v in 0..self.names.len() {
            if self.reach[v][ia] || self.reach[v][ib] {
                let ps = self.passes[v].as_ref();
                ceiling = advance_ceiling(ceiling, ps);
                let (q, _) = pass::apply_one(ps, &p, &ctx, ceiling, true)
                    .map_err(|e| format!("prefix pass {} failed: {e}", ps.name()))?;
                p = q;
            }
        }
        let run_pair = |first: usize, second: usize| -> Result<u64, String> {
            let mut q = p.clone();
            let mut c = ceiling;
            for &v in &[first, second] {
                let ps = self.passes[v].as_ref();
                c = advance_ceiling(c, ps);
                let (r, _) = pass::apply_one(ps, &q, &ctx, c, true)
                    .map_err(|e| format!("pass {} failed: {e}", ps.name()))?;
                q = r;
            }
            Ok(program_hash(&q))
        };
        let hab = run_pair(ia, ib)?;
        let hba = run_pair(ib, ia)?;
        if hab == hba {
            Ok(None)
        } else {
            Ok(Some(format!(
                "passes `{a}` and `{b}` are unordered in the DAG but do not \
                 commute: hash {hab:016x} ({a};{b}) vs {hba:016x} ({b};{a}) — \
                 declare an `after`/`before` edge"
            )))
        }
    }

    /// The DAG soundness check: every unordered pair must commute (to
    /// `program_hash` equality under adjacent swap) on every program in
    /// the corpus. Returns one description per violated (pair, program).
    ///
    /// Each pair is tested in one context — directly after its DAG
    /// ancestors. Non-commutation contingent on an unrelated pass having
    /// run first is not visible here; the schedule-differential suite
    /// covers that axis by sweeping whole sampled schedules.
    pub fn verify_commutation(
        &self,
        corpus: &[(String, QueryProgram)],
        schema: &Schema,
    ) -> Vec<String> {
        let pairs: Vec<(usize, usize)> = {
            let n = self.names.len();
            (0..n)
                .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
                .filter(|&(a, b)| !self.reach[a][b] && !self.reach[b][a])
                .collect()
        };
        let mut out = Vec::new();
        for (tag, prog) in corpus {
            // One front-end lowering per program; the pair sweeps below
            // share it (and their prefixes share the pass memo).
            let ctx = PassCtx {
                schema,
                cfg: &self.cfg,
            };
            let fe = PlanLowering(prog);
            let (_, lowered) = crate::stack::lower_frontend(&fe as &dyn Frontend, &ctx);
            for &(ia, ib) in &pairs {
                match self.counterexample_from(ia, ib, &lowered, schema) {
                    Ok(None) => {}
                    Ok(Some(msg)) => out.push(format!("[{tag}] {msg}")),
                    Err(e) => out.push(format!(
                        "[{tag}] {}/{}: {e}",
                        self.names[ia], self.names[ib]
                    )),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Cost-scored schedule selection
// ---------------------------------------------------------------------

/// Recorded compile latency per (configuration, schedule).
///
/// Every valid schedule runs the same passes, so a per-pass cost model
/// cannot rank them — what differs between orders is how they interact
/// with the memo (prefix sharing) and how large the IR is when each pass
/// meets it. Both effects are only visible in *measured whole-schedule
/// latency*, so that is what this model records: the [`cost`] table maps
/// `(config name, order)` to an EWMA of observed generation time plus the
/// per-compile memo traffic ([`crate::memo::StatsScope`] keeps those
/// tallies honest under concurrent serving).
pub mod cost {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    use crate::memo::CacheStats;

    /// Observed compile cost of one (config, order) pair.
    #[derive(Debug, Clone, Copy)]
    pub struct OrderCost {
        /// How many compiles have been recorded.
        pub runs: u64,
        /// Exponentially weighted moving average of generation time (ms) —
        /// the score schedules are ranked by. Warm compiles dominate it
        /// quickly, which is the point: steady-state latency is what a
        /// serving engine keeps paying.
        pub ewma_ms: f64,
        /// The most recent observation (ms).
        pub last_ms: f64,
        /// Cumulative pass-memo traffic attributed to this pair.
        pub memo_hits: u64,
        pub memo_misses: u64,
    }

    /// Weight of the newest observation in the EWMA.
    const ALPHA: f64 = 0.5;

    type Model = HashMap<(String, Vec<String>), OrderCost>;

    static MODEL: OnceLock<Mutex<Model>> = OnceLock::new();

    fn model() -> &'static Mutex<Model> {
        MODEL.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn key(cfg: &str, order: &[&str]) -> (String, Vec<String>) {
        (
            cfg.to_string(),
            order.iter().map(|s| s.to_string()).collect(),
        )
    }

    /// Record one measured compile of `order` under `cfg`.
    pub fn record(cfg: &str, order: &[&str], gen_ms: f64, memo: CacheStats) {
        let mut m = model().lock().unwrap();
        match m.get_mut(&key(cfg, order)) {
            Some(c) => {
                c.runs += 1;
                c.ewma_ms = (1.0 - ALPHA) * c.ewma_ms + ALPHA * gen_ms;
                c.last_ms = gen_ms;
                c.memo_hits += memo.hits;
                c.memo_misses += memo.misses;
            }
            None => {
                m.insert(
                    key(cfg, order),
                    OrderCost {
                        runs: 1,
                        ewma_ms: gen_ms,
                        last_ms: gen_ms,
                        memo_hits: memo.hits,
                        memo_misses: memo.misses,
                    },
                );
            }
        }
    }

    /// The recorded cost of `order` under `cfg`, if any compile of that
    /// pair has been measured.
    pub fn score(cfg: &str, order: &[&str]) -> Option<OrderCost> {
        model().lock().unwrap().get(&key(cfg, order)).copied()
    }

    /// Number of distinct orders recorded for `cfg`.
    pub fn recorded_orders(cfg: &str) -> usize {
        model()
            .lock()
            .unwrap()
            .keys()
            .filter(|(c, _)| c == cfg)
            .count()
    }

    /// Forget every recorded measurement (tests and cold-start benches).
    pub fn clear() {
        model().lock().unwrap().clear();
    }
}

/// The schedule [`Scheduler::cost_scored_order`] settled on, and why.
#[derive(Debug, Clone)]
pub struct ScheduleChoice {
    /// The schedule to compile with (always valid for this DAG).
    pub order: Vec<&'static str>,
    /// Whether the pick differs from the baseline (registry) order.
    pub non_baseline: bool,
    /// `true` while the model is still measuring unscored candidates (the
    /// pick is an exploration, not a cost judgment).
    pub explored: bool,
    /// The recorded EWMA (ms) that justified an exploitation pick; `None`
    /// during exploration.
    pub expected_ms: Option<f64>,
}

impl Scheduler {
    /// The candidate schedules cost scoring ranks: the baseline first,
    /// then up to `candidates - 1` sampled distinct orders (seeded, so
    /// one serving process keeps scoring the same pool and the [`cost`]
    /// model converges instead of chasing fresh orders forever).
    pub fn candidate_orders(&self, seed: u64, candidates: usize) -> Vec<Vec<&'static str>> {
        let baseline = self.baseline();
        let mut out = vec![baseline.clone()];
        for o in self.sample_orders(seed, candidates.max(1)) {
            if o != baseline && out.len() < candidates.max(1) {
                out.push(o);
            }
        }
        out
    }

    /// Pick a schedule by recorded warm-compile latency: measure every
    /// candidate once (in candidate order, so a cold process starts at
    /// the baseline), then keep picking the candidate with the lowest
    /// recorded EWMA. Feed measurements back via [`cost::record`] — the
    /// driver's [`crate::stack::compile_cost_scored`] does both halves.
    pub fn cost_scored_order(&self, seed: u64, candidates: usize) -> ScheduleChoice {
        let cfg = self.cfg.name;
        let pool = self.candidate_orders(seed, candidates);
        for order in &pool {
            if cost::score(cfg, order).is_none() {
                return ScheduleChoice {
                    non_baseline: *order != self.baseline(),
                    order: order.clone(),
                    explored: true,
                    expected_ms: None,
                };
            }
        }
        let (order, best) = pool
            .into_iter()
            .map(|o| {
                let c = cost::score(cfg, &o).expect("all candidates scored");
                (o, c.ewma_ms)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("candidate pool is never empty");
        ScheduleChoice {
            non_baseline: order != self.baseline(),
            order,
            explored: false,
            expected_ms: Some(best),
        }
    }
}

/// Tiny deterministic generator for schedule sampling (splitmix64 —
/// self-contained so the scheduler depends on nothing outside this
/// crate).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level5() -> StackConfig {
        StackConfig::level5()
    }

    #[test]
    fn dag_builds_and_baseline_validates() {
        let s = Scheduler::from_registry(&level5()).expect("valid DAG");
        assert_eq!(s.names().len(), 10);
        s.validate_order(&s.baseline()).expect("baseline valid");
        // The three lowerings are totally ordered by level edges.
        let e = s.edge_names();
        assert!(e.iter().any(|(a, b, k)| *a == "hash-table-specialization"
            && *b == "list-specialization"
            && *k == EdgeKind::Level));
        assert!(e.iter().any(|(a, b, k)| *a == "list-specialization"
            && *b == "memory-hoisting"
            && *k == EdgeKind::Level));
    }

    #[test]
    fn sampled_orders_are_distinct_valid_and_deterministic() {
        let s = Scheduler::from_registry(&level5()).expect("valid DAG");
        let orders = s.sample_orders(0xdb1ab, 25);
        assert_eq!(orders.len(), 25, "level-5 DAG admits at least 25 orders");
        for o in &orders {
            s.validate_order(o).expect("sampled order valid");
        }
        for i in 0..orders.len() {
            for j in i + 1..orders.len() {
                assert_ne!(orders[i], orders[j], "orders are distinct");
            }
        }
        assert_eq!(orders, s.sample_orders(0xdb1ab, 25), "seeded: reproducible");
        assert_ne!(
            orders,
            s.sample_orders(0xdb1ab + 1, 25),
            "different seed, different sample"
        );
    }

    #[test]
    fn order_count_is_consistent_with_sampling() {
        let s = Scheduler::from_registry(&level5()).expect("valid DAG");
        let count = s.order_count().expect("10 passes: countable");
        assert!(count >= 25, "DAG admits {count} orders");
        // Sampling cannot exceed the exact count: ask for more than exist
        // on a tiny config and get exactly the count back.
        let s2 = Scheduler::from_registry(&StackConfig::level2()).expect("valid DAG");
        let c2 = s2.order_count().expect("countable") as usize;
        let all = s2.sample_orders(1, c2 + 50);
        assert_eq!(all.len(), c2, "sampling saturates at the exact count");
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let s = Scheduler::from_registry(&level5()).expect("valid DAG");
        let mut order = s.baseline();
        // list-specialization before hash-table-specialization: level edge.
        let ih = order
            .iter()
            .position(|n| *n == "hash-table-specialization")
            .unwrap();
        let il = order
            .iter()
            .position(|n| *n == "list-specialization")
            .unwrap();
        order.swap(ih, il);
        let err = s.validate_order(&order).unwrap_err();
        assert!(err.contains("edge") || err.contains("expects"), "{err}");
        // Truncated and duplicated schedules are rejected too.
        assert!(s.validate_order(&order[1..]).is_err());
        let mut dup = s.baseline();
        dup[0] = dup[1];
        assert!(s.validate_order(&dup).is_err());
    }

    #[test]
    fn unknown_declared_edge_is_an_error() {
        struct Typo;
        impl Pass for Typo {
            fn name(&self) -> &'static str {
                "typo"
            }
            fn kind(&self) -> PassKind {
                PassKind::Optimization
            }
            fn source(&self) -> Level {
                Level::MapList
            }
            fn target(&self) -> Level {
                Level::MapList
            }
            fn after(&self) -> &'static [&'static str] {
                &["horizontal-fusionn"] // typo
            }
            fn run(&self, p: &dblab_ir::Program, _ctx: &PassCtx) -> dblab_ir::Program {
                p.clone()
            }
        }
        let mut passes = pass::registry();
        passes.push(Box::new(Typo));
        let err = Scheduler::from_passes(passes, &level5()).unwrap_err();
        assert!(err.contains("unknown pass"), "{err}");
    }

    #[test]
    fn contradictory_edges_surface_as_a_cycle() {
        struct WantsLate;
        impl Pass for WantsLate {
            fn name(&self) -> &'static str {
                "wants-late"
            }
            fn kind(&self) -> PassKind {
                PassKind::Optimization
            }
            fn source(&self) -> Level {
                Level::MapList
            }
            fn target(&self) -> Level {
                Level::MapList
            }
            // Non-floating at MapList (level edges force it before the
            // first lowering) yet declared after memory-hoisting.
            fn after(&self) -> &'static [&'static str] {
                &["memory-hoisting"]
            }
            fn run(&self, p: &dblab_ir::Program, _ctx: &PassCtx) -> dblab_ir::Program {
                p.clone()
            }
        }
        let mut passes = pass::registry();
        passes.push(Box::new(WantsLate));
        let err = Scheduler::from_passes(passes, &level5()).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn edges_to_config_disabled_passes_are_vacuous() {
        // level-2 disables every lowering; declared edges that reference
        // them must drop out rather than error.
        let s = Scheduler::from_registry(&StackConfig::level2()).expect("valid DAG");
        assert!(s.names().contains(&"field-removal"));
        assert!(!s.names().contains(&"memory-hoisting"));
    }

    #[test]
    fn cost_model_records_and_averages() {
        // A config name unique to this test: the model is process-wide.
        let cfg = "cost-model-unit";
        let order = ["a", "b", "c"];
        assert!(cost::score(cfg, &order).is_none());
        cost::record(
            cfg,
            &order,
            10.0,
            crate::memo::CacheStats { hits: 3, misses: 1 },
        );
        let c = cost::score(cfg, &order).expect("recorded");
        assert_eq!(c.runs, 1);
        assert_eq!(c.ewma_ms, 10.0);
        assert_eq!((c.memo_hits, c.memo_misses), (3, 1));
        cost::record(
            cfg,
            &order,
            2.0,
            crate::memo::CacheStats { hits: 4, misses: 0 },
        );
        let c = cost::score(cfg, &order).expect("recorded");
        assert_eq!(c.runs, 2);
        assert!(c.ewma_ms < 10.0 && c.ewma_ms > 2.0, "EWMA moved: {c:?}");
        assert_eq!(c.last_ms, 2.0);
        assert_eq!(cost::recorded_orders(cfg), 1);
        // A different order under the same config is a separate entry.
        cost::record(cfg, &["c", "b", "a"], 5.0, Default::default());
        assert_eq!(cost::recorded_orders(cfg), 2);
    }

    #[test]
    fn cost_scoring_explores_then_picks_the_cheapest() {
        // Unique config name: the cost model is keyed by it, and other
        // tests in this binary share the process-wide table.
        let cfg = StackConfig {
            name: "cost-scored-unit",
            ..StackConfig::level5()
        };
        let s = Scheduler::from_registry(&cfg).expect("valid DAG");
        let pool = s.candidate_orders(42, 4);
        assert_eq!(pool.len(), 4, "level-5 DAG fills the candidate pool");
        assert_eq!(pool[0], s.baseline(), "baseline is always a candidate");

        // Exploration: candidates are measured in pool order, baseline
        // first; every exploration pick is unscored at pick time.
        for (i, expect) in pool.iter().enumerate() {
            let choice = s.cost_scored_order(42, 4);
            assert!(choice.explored, "candidate {i} is an exploration");
            assert_eq!(&choice.order, expect);
            assert_eq!(choice.non_baseline, i != 0);
            assert_eq!(choice.expected_ms, None);
            // Pretend candidate i took (i == 2 ? 1ms : 10+i ms): the third
            // candidate is the cheapest.
            let ms = if i == 2 { 1.0 } else { 10.0 + i as f64 };
            cost::record(cfg.name, &choice.order, ms, Default::default());
        }

        // Exploitation: every candidate is scored; the cheapest wins, and
        // it is a non-baseline order.
        let choice = s.cost_scored_order(42, 4);
        assert!(!choice.explored);
        assert_eq!(choice.order, pool[2]);
        assert!(choice.non_baseline);
        assert_eq!(choice.expected_ms, Some(1.0));
        // New measurements keep steering the pick: make the baseline far
        // cheaper and it takes over.
        for _ in 0..8 {
            cost::record(cfg.name, &pool[0], 0.1, Default::default());
        }
        let choice = s.cost_scored_order(42, 4);
        assert_eq!(choice.order, pool[0]);
        assert!(!choice.non_baseline);
    }

    #[test]
    fn adjacent_order_places_the_pair_back_to_back() {
        let s = Scheduler::from_registry(&level5()).expect("valid DAG");
        let (a, b) = *s
            .commuting_pairs()
            .first()
            .expect("level-5 DAG leaves some pairs unordered");
        let o = s.adjacent_order(a, b).expect("constructible");
        let ia = o.iter().position(|n| *n == a).unwrap();
        let ib = o.iter().position(|n| *n == b).unwrap();
        assert_eq!(ib, ia + 1, "pair adjacent in {o:?}");
        s.validate_order(&o).expect("valid");
        let o2 = s.adjacent_order(b, a).expect("swap constructible");
        s.validate_order(&o2).expect("valid swapped");
        // Ordered pairs cannot be swapped at all.
        assert!(s
            .adjacent_order("list-specialization", "hash-table-specialization")
            .is_err());
    }
}
