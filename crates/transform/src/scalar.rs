//! Scalar expression lowering: front-end [`ScalarExpr`]s → ANF IR, against
//! a named row environment.
//!
//! The environment rows carry *provenance* — which base-table column an
//! atom is a verbatim copy of — piped along as symbol annotations (§3.3).
//! The string-dictionary and index-inference transformations consume it.

use std::collections::HashMap;
use std::sync::Arc;

use dblab_frontend::expr::{BinOp as FBinOp, Lit, ScalarExpr};
use dblab_ir::expr::{Annot, PrimOp};
use dblab_ir::{Atom, BinOp, IrBuilder, Type, UnOp};

/// One named column flowing through the pipeline.
#[derive(Debug, Clone)]
pub struct ColRef {
    pub name: Arc<str>,
    pub atom: Atom,
    /// `Some((table, field))` when the atom is a verbatim copy of a base
    /// table column.
    pub prov: Option<(Arc<str>, usize)>,
}

/// A row environment: the columns visible at the current pipeline point.
#[derive(Debug, Clone, Default)]
pub struct RowEnv {
    pub cols: Vec<ColRef>,
}

impl RowEnv {
    pub fn new(cols: Vec<ColRef>) -> RowEnv {
        RowEnv { cols }
    }

    pub fn lookup(&self, name: &str) -> &ColRef {
        self.cols
            .iter()
            .find(|c| &*c.name == name)
            .unwrap_or_else(|| {
                panic!(
                    "pipeline: unknown column {name}; in scope: {:?}",
                    self.cols
                        .iter()
                        .map(|c| c.name.to_string())
                        .collect::<Vec<_>>()
                )
            })
    }

    pub fn concat(&self, other: &RowEnv) -> RowEnv {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowEnv { cols }
    }

    /// Record provenance annotations on every symbol-valued column (so IR
    /// rules can see it after the front-end environment is gone).
    pub fn annotate_provenance(&self, b: &mut IrBuilder) {
        for c in &self.cols {
            if let (Atom::Sym(s), Some((t, f))) = (&c.atom, &c.prov) {
                b.annotate(
                    *s,
                    Annot::Column {
                        table: t.clone(),
                        field: *f,
                    },
                );
            }
        }
    }
}

/// Lower a literal.
pub fn lower_lit(l: &Lit) -> Atom {
    match l {
        Lit::Bool(v) => Atom::Bool(*v),
        Lit::Int(v) => Atom::Int(*v as i64),
        Lit::Long(v) => Atom::Long(*v),
        Lit::Double(v) => Atom::double(*v),
        Lit::Str(s) => Atom::Str(s.clone()),
    }
}

/// Lower `e` in environment `env` with scalar-subquery `params`.
pub fn lower_expr(
    b: &mut IrBuilder,
    env: &RowEnv,
    params: &HashMap<Arc<str>, Atom>,
    e: &ScalarExpr,
) -> Atom {
    match e {
        ScalarExpr::Col(n) => env.lookup(n).atom.clone(),
        ScalarExpr::Param(n) => params
            .get(n)
            .unwrap_or_else(|| panic!("unbound parameter {n}"))
            .clone(),
        ScalarExpr::Lit(l) => lower_lit(l),
        ScalarExpr::Bin(op, x, y) => {
            let xa = lower_expr(b, env, params, x);
            let ya = lower_expr(b, env, params, y);
            let string_operands = b.atom_type(&xa) == Type::String;
            if string_operands {
                return match op {
                    FBinOp::Eq => b.prim(PrimOp::StrEq, vec![xa, ya]),
                    FBinOp::Ne => b.prim(PrimOp::StrNe, vec![xa, ya]),
                    FBinOp::Lt | FBinOp::Le | FBinOp::Gt | FBinOp::Ge => {
                        let c = b.prim(PrimOp::StrCmp, vec![xa, ya]);
                        b.bin(lower_binop(*op), c, Atom::Int(0))
                    }
                    other => panic!("operator {other:?} on strings"),
                };
            }
            b.bin(lower_binop(*op), xa, ya)
        }
        ScalarExpr::Not(x) => {
            let xa = lower_expr(b, env, params, x);
            b.un(UnOp::Not, xa)
        }
        ScalarExpr::Neg(x) => {
            let xa = lower_expr(b, env, params, x);
            b.un(UnOp::Neg, xa)
        }
        ScalarExpr::Year(x) => {
            let xa = lower_expr(b, env, params, x);
            b.un(UnOp::Year, xa)
        }
        ScalarExpr::Like(x, pat) => {
            let xa = lower_expr(b, env, params, x);
            b.prim(PrimOp::StrLike, vec![xa, Atom::Str(pat.clone())])
        }
        ScalarExpr::StartsWith(x, p) => {
            let xa = lower_expr(b, env, params, x);
            b.prim(PrimOp::StrStartsWith, vec![xa, Atom::Str(p.clone())])
        }
        ScalarExpr::EndsWith(x, p) => {
            let xa = lower_expr(b, env, params, x);
            b.prim(PrimOp::StrEndsWith, vec![xa, Atom::Str(p.clone())])
        }
        ScalarExpr::Contains(x, p) => {
            let xa = lower_expr(b, env, params, x);
            b.prim(PrimOp::StrContains, vec![xa, Atom::Str(p.clone())])
        }
        ScalarExpr::Substr(x, start, len) => {
            let xa = lower_expr(b, env, params, x);
            b.prim(
                PrimOp::StrSubstr,
                vec![xa, Atom::Int(*start as i64), Atom::Int(*len as i64)],
            )
        }
        ScalarExpr::InList(x, lits) => {
            let xa = lower_expr(b, env, params, x);
            let is_string = b.atom_type(&xa) == Type::String;
            let mut acc: Option<Atom> = None;
            for l in lits {
                let la = lower_lit(l);
                let eq = if is_string {
                    b.prim(PrimOp::StrEq, vec![xa.clone(), la])
                } else {
                    b.eq(xa.clone(), la)
                };
                acc = Some(match acc {
                    None => eq,
                    Some(prev) => b.or(prev, eq),
                });
            }
            acc.unwrap_or(Atom::Bool(false))
        }
        ScalarExpr::Case(whens, els) => lower_case(b, env, params, whens, els),
    }
}

fn lower_case(
    b: &mut IrBuilder,
    env: &RowEnv,
    params: &HashMap<Arc<str>, Atom>,
    whens: &[(ScalarExpr, ScalarExpr)],
    els: &ScalarExpr,
) -> Atom {
    if whens.is_empty() {
        return lower_expr(b, env, params, els);
    }
    let (cond, val) = &whens[0];
    let rest = &whens[1..];
    let ca = lower_expr(b, env, params, cond);
    // Both arms must be built in child scopes of the `if`; clone the
    // environment pieces the closures need.
    b.scope_push();
    let then_res = lower_expr(b, env, params, val);
    let then_b = b.scope_pop(then_res);
    b.scope_push();
    let else_res = lower_case(b, env, params, rest, els);
    let else_b = b.scope_pop(else_res);
    let ty = b.atom_type(&then_b.result);
    b.emit(
        ty,
        dblab_ir::Expr::If {
            cond: ca,
            then_b,
            else_b,
        },
    )
}

fn lower_binop(op: FBinOp) -> BinOp {
    match op {
        FBinOp::Add => BinOp::Add,
        FBinOp::Sub => BinOp::Sub,
        FBinOp::Mul => BinOp::Mul,
        FBinOp::Div => BinOp::Div,
        FBinOp::Eq => BinOp::Eq,
        FBinOp::Ne => BinOp::Ne,
        FBinOp::Lt => BinOp::Lt,
        FBinOp::Le => BinOp::Le,
        FBinOp::Gt => BinOp::Gt,
        FBinOp::Ge => BinOp::Ge,
        FBinOp::And => BinOp::And,
        FBinOp::Or => BinOp::Or,
    }
}

/// Map a catalog column type to the IR type.
pub fn ir_type(ct: dblab_catalog::ColType) -> Type {
    use dblab_catalog::ColType::*;
    match ct {
        Bool => Type::Bool,
        Int | Date | Char => Type::Int,
        Long => Type::Long,
        Double => Type::Double,
        String => Type::String,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dblab_frontend::expr::*;
    use dblab_ir::Level;

    fn env(b: &mut IrBuilder) -> RowEnv {
        let v = b.decl_var(Atom::Int(3));
        let a = b.read_var(v);
        let w = b.decl_var(Atom::Str("PROMO X".into()));
        let s = b.read_var(w);
        RowEnv::new(vec![
            ColRef {
                name: "a".into(),
                atom: a,
                prov: Some(("t".into(), 0)),
            },
            ColRef {
                name: "s".into(),
                atom: s,
                prov: None,
            },
        ])
    }

    #[test]
    fn lowers_arithmetic_with_cse() {
        let mut b = IrBuilder::new();
        let env = env(&mut b);
        let params = HashMap::new();
        let e = col("a").add(lit_i(1)).mul(col("a").add(lit_i(1)));
        let r = lower_expr(&mut b, &env, &params, &e);
        let p = b.finish(r, Level::MapList);
        // decl+read (x2) + one shared add + one mul
        let adds = p
            .body
            .stmts
            .iter()
            .filter(|st| matches!(st.expr, dblab_ir::Expr::Bin(dblab_ir::BinOp::Add, ..)))
            .count();
        assert_eq!(adds, 1, "{:#?}", p.body.stmts);
    }

    #[test]
    fn string_comparison_uses_prims() {
        let mut b = IrBuilder::new();
        let env = env(&mut b);
        let params = HashMap::new();
        let r = lower_expr(&mut b, &env, &params, &col("s").eq(lit_s("x")));
        let p = b.finish(r, Level::MapList);
        assert!(p
            .body
            .stmts
            .iter()
            .any(|st| matches!(st.expr, dblab_ir::Expr::Prim(PrimOp::StrEq, _))));
    }

    #[test]
    fn case_lowers_to_if_chain() {
        let mut b = IrBuilder::new();
        let env = env(&mut b);
        let params = HashMap::new();
        let e = ScalarExpr::Case(
            vec![
                (col("a").eq(lit_i(1)), lit_d(1.0)),
                (col("a").eq(lit_i(2)), lit_d(2.0)),
            ],
            Box::new(lit_d(0.0)),
        );
        let r = lower_expr(&mut b, &env, &params, &e);
        let p = b.finish(r, Level::MapList);
        let ifs = p
            .body
            .stmts
            .iter()
            .filter(|st| matches!(st.expr, dblab_ir::Expr::If { .. }))
            .count();
        assert_eq!(ifs, 1, "outer if (inner nested in else block)");
        assert_eq!(p.atom_type(&p.body.result), Type::Double);
    }

    #[test]
    fn in_list_becomes_or_chain() {
        let mut b = IrBuilder::new();
        let env = env(&mut b);
        let params = HashMap::new();
        let e = col("a").in_list(vec![Lit::Int(1), Lit::Int(2), Lit::Int(3)]);
        let r = lower_expr(&mut b, &env, &params, &e);
        assert_eq!(b.atom_type(&r), Type::Bool);
    }

    #[test]
    #[should_panic(expected = "unbound parameter")]
    fn unbound_param_is_loud() {
        let mut b = IrBuilder::new();
        let env = env(&mut b);
        let params = HashMap::new();
        lower_expr(&mut b, &env, &params, &param("nope"));
    }
}
