//! Stack configurations — the experiment axis of the paper's Table 3 — and
//! the formal stack-construction checker (§2.3).

use dblab_ir::Level;

/// Which optimizations/lowerings a compiler build enables. Each
/// constructor mirrors one column group of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackConfig {
    /// Number of DSL levels (2–5), reporting only.
    pub levels: u8,
    /// Human-readable configuration name.
    pub name: &'static str,

    // ---- level 3 (ScaLite) ------------------------------------------------
    /// Hoist record allocations into pre-sized memory pools (App. D.1).
    pub mem_pools: bool,
    /// Columnar storage for base tables instead of boxed rows (App. C).
    pub columnar_layout: bool,
    /// Remove unused base-table attributes (App. C; not TPC-H compliant).
    pub table_field_removal: bool,

    // ---- level 4 (ScaLite[Map, List]) --------------------------------------
    /// Specialize hash tables to bucket arrays / dense arrays (§5.2).
    pub hash_spec: bool,
    /// String dictionaries (§5.3; not TPC-H compliant).
    pub string_dict: bool,
    /// Hoist data-structure initialization out of the hot loop (App. D.2).
    pub init_hoist: bool,

    // ---- level 5 (ScaLite[List]) -------------------------------------------
    /// Automatic index inference + data-structure partitioning
    /// (§5.2/App. B.1; not TPC-H compliant).
    pub index_inference: bool,
    /// Intrusive linked lists / static arrays for lists (§4.4).
    pub list_spec: bool,

    // ---- fine-grained (App. E) ---------------------------------------------
    /// `&&` → `&` branch optimization.
    pub branchless: bool,

    // ---- execution ---------------------------------------------------------
    /// Worker threads for morsel-driven intra-query parallelism. `1` means
    /// fully serial: the parallelize-scans pass does not run and the
    /// pipeline (and its memoized artifacts) are identical to a build that
    /// predates the knob.
    pub threads: usize,
}

impl StackConfig {
    /// The naïve two-level stack: pipelining plus operator inlining, then
    /// straight to C with generic data structures (what the paper calls a
    /// template-expander-grade compiler).
    pub fn level2() -> StackConfig {
        StackConfig {
            levels: 2,
            name: "DBLAB/LB 2",
            mem_pools: false,
            columnar_layout: false,
            table_field_removal: false,
            hash_spec: false,
            string_dict: false,
            init_hoist: false,
            index_inference: false,
            list_spec: false,
            branchless: false,
            threads: 1,
        }
    }

    /// Three levels: + ScaLite (memory management and layout, §4.2).
    pub fn level3() -> StackConfig {
        StackConfig {
            levels: 3,
            name: "DBLAB/LB 3",
            mem_pools: true,
            columnar_layout: true,
            table_field_removal: true,
            ..Self::level2()
        }
    }

    /// Four levels: + ScaLite\[Map, List\] (data-structure specialization
    /// and string dictionaries, §4.3).
    pub fn level4() -> StackConfig {
        StackConfig {
            levels: 4,
            name: "DBLAB/LB 4",
            hash_spec: true,
            string_dict: true,
            init_hoist: true,
            branchless: true,
            ..Self::level3()
        }
    }

    /// The full five-level stack: + ScaLite\[List\] (list specialization,
    /// index inference, partitioning, §4.4).
    pub fn level5() -> StackConfig {
        StackConfig {
            levels: 5,
            name: "DBLAB/LB 5",
            index_inference: true,
            list_spec: true,
            ..Self::level4()
        }
    }

    /// The TPC-H-compliant configuration (paper footnote 11): the full
    /// stack minus string dictionaries, partitioning/index inference, and
    /// unused-attribute removal.
    pub fn compliant() -> StackConfig {
        StackConfig {
            name: "TPC-H Compliant",
            string_dict: false,
            index_inference: false,
            table_field_removal: false,
            ..Self::level5()
        }
    }

    /// The LegoBase baseline's optimization set (Table 3 row 1): the
    /// four-level stack's fused optimizations under the baseline's name.
    /// Shared by `dblab-legobase` and the benchmark harness so the two
    /// sides of the comparison can never drift apart.
    pub fn legobase() -> StackConfig {
        StackConfig {
            name: "LegoBase",
            ..Self::level4()
        }
    }

    /// Fingerprint of every *semantic* flag (name and level count are
    /// presentation-only). The conservative default for
    /// [`crate::pass::Pass::cfg_key`]: passes that know which bits they
    /// read narrow it down so overlapping configurations share memoized
    /// pipeline prefixes.
    pub fn fingerprint(&self) -> u64 {
        [
            self.mem_pools,
            self.columnar_layout,
            self.table_field_removal,
            self.hash_spec,
            self.string_dict,
            self.init_hoist,
            self.index_inference,
            self.list_spec,
            self.branchless,
        ]
        .iter()
        .fold(0u64, |acc, &b| (acc << 1) | b as u64)
            // `threads == 1` must leave the fingerprint exactly what it was
            // before the knob existed, so every pre-parallelism memo and
            // build-cache entry stays valid.
            | if self.threads > 1 {
                (self.threads as u64) << 32
            } else {
                0
            }
    }

    /// All Table 3 configurations in presentation order.
    pub fn table3() -> Vec<StackConfig> {
        vec![
            Self::level2(),
            Self::level3(),
            Self::level4(),
            Self::level5(),
            Self::compliant(),
        ]
    }
}

/// A declared transformation edge for the stack checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub name: &'static str,
    pub source: Level,
    pub target: Level,
}

/// Validates a declared DSL stack against the paper's two principles
/// (§2.2–2.3):
///
/// * **expressibility** — a transformation never targets a *higher* level
///   (that would create a loop and infinitely many lowering paths);
/// * **transformation cohesion** — between any two distinct levels there is
///   exactly one path of lowerings, which for a linear stack means exactly
///   one lowering out of every non-bottom level.
pub struct StackBuilder {
    edges: Vec<Edge>,
}

impl Default for StackBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StackBuilder {
    pub fn new() -> StackBuilder {
        StackBuilder { edges: Vec::new() }
    }

    pub fn add(mut self, name: &'static str, source: Level, target: Level) -> StackBuilder {
        self.edges.push(Edge {
            name,
            source,
            target,
        });
        self
    }

    /// Check the principles; `Ok` returns the lowering chain top-to-bottom.
    pub fn check(&self) -> Result<Vec<Edge>, String> {
        let mut lowerings: Vec<Edge> = Vec::new();
        for e in &self.edges {
            if e.target < e.source {
                return Err(format!(
                    "transformation {} goes upward ({} -> {}), violating the \
                     expressibility principle",
                    e.name, e.source, e.target
                ));
            }
            if e.target > e.source {
                lowerings.push(*e);
            }
            // source == target: an optimization, always fine.
        }
        for level in Level::ALL {
            let out: Vec<&Edge> = lowerings.iter().filter(|e| e.source == level).collect();
            if level != Level::CScala && out.len() > 1 {
                return Err(format!(
                    "{} has {} outgoing lowerings ({}), violating transformation \
                     cohesion — split the level (§2.3)",
                    level,
                    out.len(),
                    out.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        let mut chain = lowerings;
        chain.sort_by_key(|e| e.source);
        Ok(chain)
    }
}

/// The stack this crate implements, as declared edges (used by tests and
/// the quickstart example to demonstrate the checker). Built directly from
/// the pass registry's declarations, so the checked stack can never drift
/// from the pipeline that actually runs.
pub fn dblab_stack() -> StackBuilder {
    crate::pass::declared_edges()
        .into_iter()
        .fold(StackBuilder::new(), |b, (name, source, target)| {
            b.add(name, source, target)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_monotone() {
        let l2 = StackConfig::level2();
        let l5 = StackConfig::level5();
        assert!(!l2.hash_spec && l5.hash_spec);
        assert!(!l2.mem_pools && l5.mem_pools);
        assert_eq!(StackConfig::table3().len(), 5);
    }

    #[test]
    fn compliant_disables_the_four_optimizations() {
        let c = StackConfig::compliant();
        assert!(!c.string_dict);
        assert!(!c.index_inference);
        assert!(!c.table_field_removal);
        assert!(c.hash_spec, "compliant keeps data-structure specialization");
    }

    #[test]
    fn dblab_stack_satisfies_the_principles() {
        let chain = dblab_stack().check().expect("valid stack");
        assert_eq!(chain.len(), 3); // MapList→List→ScaLite→CScala
        assert_eq!(chain[0].source, Level::MapList);
        assert_eq!(chain[2].target, Level::CScala);
    }

    #[test]
    fn upward_edges_are_rejected() {
        let err = StackBuilder::new()
            .add("bad", Level::ScaLite, Level::MapList)
            .check()
            .unwrap_err();
        assert!(err.contains("expressibility"));
    }

    #[test]
    fn double_lowerings_are_rejected() {
        // The paper's §2.3 scenario: two lowerings from the same level mean
        // the level must be split.
        let err = StackBuilder::new()
            .add("pipelining", Level::MapList, Level::CScala)
            .add("ds-specialization", Level::MapList, Level::CScala)
            .check()
            .unwrap_err();
        assert!(err.contains("cohesion"));
    }
}
