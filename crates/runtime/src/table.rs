//! Columnar in-memory tables and `.tbl` IO.
//!
//! The on-disk format is the TPC-H `dbgen` text format: one row per line,
//! `|`-separated fields, dates as `yyyy-mm-dd`. Our generator writes it and
//! both the Rust loaders and the generated C loaders read it, so the system
//! can also be pointed at official `dbgen` output.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use dblab_catalog::{ColType, Schema, TableDef};

use crate::value::Value;

/// One column of data. `Date`/`Char` columns are carried as `Int`
/// (`yyyymmdd` / ASCII code).
#[derive(Debug, Clone)]
pub enum ColData {
    Int(Vec<i32>),
    Long(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColData {
    fn new(ty: ColType) -> ColData {
        match ty {
            ColType::Int | ColType::Date | ColType::Char | ColType::Bool => {
                ColData::Int(Vec::new())
            }
            ColType::Long => ColData::Long(Vec::new()),
            ColType::Double => ColData::Double(Vec::new()),
            ColType::String => ColData::Str(Vec::new()),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColData::Int(v) => v.len(),
            ColData::Long(v) => v.len(),
            ColData::Double(v) => v.len(),
            ColData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, row: usize) -> Value {
        match self {
            ColData::Int(v) => Value::Int(v[row]),
            ColData::Long(v) => Value::Long(v[row]),
            ColData::Double(v) => Value::Double(v[row]),
            ColData::Str(v) => Value::Str(v[row].clone()),
        }
    }

    fn push(&mut self, v: Value) {
        match (self, v) {
            (ColData::Int(c), Value::Int(x)) => c.push(x),
            (ColData::Long(c), Value::Long(x)) => c.push(x),
            (ColData::Long(c), Value::Int(x)) => c.push(x as i64),
            (ColData::Double(c), Value::Double(x)) => c.push(x),
            (ColData::Double(c), Value::Int(x)) => c.push(x as f64),
            (ColData::Str(c), Value::Str(x)) => c.push(x),
            (col, v) => panic!("pushed {v:?} into column {col:?}"),
        }
    }
}

/// A columnar table with its schema definition.
#[derive(Debug, Clone)]
pub struct Table {
    pub def: TableDef,
    pub cols: Vec<ColData>,
}

impl Table {
    pub fn empty(def: &TableDef) -> Table {
        Table {
            def: def.clone(),
            cols: def.columns.iter().map(|c| ColData::new(c.ty)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.cols.first().map(|c| c.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, row: usize, col: usize) -> Value {
        self.cols[col].get(row)
    }

    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    pub fn row(&self, i: usize) -> Vec<Value> {
        (0..self.cols.len()).map(|c| self.get(i, c)).collect()
    }

    /// Serialize in `dbgen` `.tbl` format.
    pub fn write_tbl(&self, path: &Path) -> std::io::Result<()> {
        let mut out = BufWriter::new(std::fs::File::create(path)?);
        let n = self.len();
        let mut field = String::new();
        for row in 0..n {
            for (i, col) in self.cols.iter().enumerate() {
                field.clear();
                format_field(&mut field, col, self.def.columns[i].ty, row);
                out.write_all(field.as_bytes())?;
                out.write_all(b"|")?;
            }
            out.write_all(b"\n")?;
        }
        out.flush()
    }

    /// Parse a `.tbl` file for the given table definition.
    pub fn read_tbl(def: &TableDef, path: &Path) -> std::io::Result<Table> {
        let mut table = Table::empty(def);
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        while reader.read_line(&mut line)? != 0 {
            let trimmed = line.trim_end_matches('\n');
            if !trimmed.is_empty() {
                push_tbl_line(&mut table, trimmed);
            }
            line.clear();
        }
        Ok(table)
    }
}

fn format_field(out: &mut String, col: &ColData, ty: ColType, row: usize) {
    use std::fmt::Write as _;
    match (col, ty) {
        (ColData::Int(v), ColType::Date) => {
            let d = v[row];
            let _ = write!(out, "{:04}-{:02}-{:02}", d / 10000, d / 100 % 100, d % 100);
        }
        (ColData::Int(v), ColType::Char) => out.push(v[row] as u8 as char),
        (ColData::Int(v), _) => {
            let _ = write!(out, "{}", v[row]);
        }
        (ColData::Long(v), _) => {
            let _ = write!(out, "{}", v[row]);
        }
        (ColData::Double(v), _) => {
            let _ = write!(out, "{:.2}", v[row]);
        }
        (ColData::Str(v), _) => out.push_str(&v[row]),
    }
}

fn push_tbl_line(table: &mut Table, line: &str) {
    let mut fields = line.split('|');
    let n = table.cols.len();
    for i in 0..n {
        let raw = fields
            .next()
            .unwrap_or_else(|| panic!("too few fields for {}: {line}", table.def.name));
        let ty = table.def.columns[i].ty;
        let v = parse_field(raw, ty);
        table.cols[i].push(v);
    }
}

/// Parse a single `.tbl` field of the given type.
pub fn parse_field(raw: &str, ty: ColType) -> Value {
    match ty {
        ColType::Int => Value::Int(raw.parse().expect("int field")),
        ColType::Bool => Value::Int(if raw == "1" || raw == "true" { 1 } else { 0 }),
        ColType::Long => Value::Long(raw.parse().expect("long field")),
        ColType::Double => Value::Double(raw.parse().expect("double field")),
        ColType::String => Value::str(raw),
        ColType::Char => Value::Int(raw.as_bytes().first().copied().unwrap_or(b' ') as i32),
        ColType::Date => {
            let mut it = raw.split('-');
            let y: i32 = it.next().and_then(|s| s.parse().ok()).expect("year");
            let m: i32 = it.next().and_then(|s| s.parse().ok()).expect("month");
            let d: i32 = it.next().and_then(|s| s.parse().ok()).expect("day");
            Value::Int(y * 10000 + m * 100 + d)
        }
    }
}

/// An in-memory database: all tables of a schema, plus the directory the
/// `.tbl` files live in (the generated C loads from the same directory).
#[derive(Debug, Clone)]
pub struct Database {
    pub schema: Schema,
    pub tables: Vec<Table>,
    pub dir: std::path::PathBuf,
}

impl Database {
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .iter()
            .find(|t| &*t.def.name == name)
            .unwrap_or_else(|| panic!("no table {name} in database"))
    }

    /// Write every table as `<dir>/<name>.tbl`.
    pub fn write_all(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        for t in &self.tables {
            t.write_tbl(&self.dir.join(format!("{}.tbl", t.def.name)))?;
        }
        Ok(())
    }

    /// Load every table of `schema` from `<dir>/<name>.tbl`.
    pub fn read_all(schema: &Schema, dir: &Path) -> std::io::Result<Database> {
        let mut tables = Vec::new();
        for def in &schema.tables {
            tables.push(Table::read_tbl(
                def,
                &dir.join(format!("{}.tbl", def.name)),
            )?);
        }
        Ok(Database {
            schema: schema.clone(),
            tables,
            dir: dir.to_path_buf(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def() -> TableDef {
        TableDef::new(
            "t",
            vec![
                ("a", ColType::Int),
                ("b", ColType::Double),
                ("c", ColType::String),
                ("d", ColType::Date),
                ("e", ColType::Char),
            ],
        )
    }

    fn sample() -> Table {
        let mut t = Table::empty(&def());
        t.push_row(vec![
            Value::Int(1),
            Value::Double(2.5),
            Value::str("hello"),
            Value::Int(19980902),
            Value::Int('R' as i32),
        ]);
        t.push_row(vec![
            Value::Int(2),
            Value::Double(-1.0),
            Value::str("world"),
            Value::Int(19951231),
            Value::Int('A' as i32),
        ]);
        t
    }

    #[test]
    fn tbl_roundtrip() {
        let dir = std::env::temp_dir().join("dblab_tbl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tbl");
        let t = sample();
        t.write_tbl(&path).unwrap();
        let txt = std::fs::read_to_string(&path).unwrap();
        assert!(txt.starts_with("1|2.50|hello|1998-09-02|R|"));
        let back = Table::read_tbl(&def(), &path).unwrap();
        assert_eq!(back.len(), 2);
        for r in 0..2 {
            for c in 0..5 {
                assert_eq!(back.get(r, c), t.get(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn date_field_roundtrip() {
        assert_eq!(
            parse_field("1998-09-02", ColType::Date),
            Value::Int(19980902)
        );
        assert_eq!(parse_field("R", ColType::Char), Value::Int(82));
        assert_eq!(parse_field("3.25", ColType::Double), Value::Double(3.25));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = sample();
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn row_accessor() {
        let t = sample();
        let row = t.row(1);
        assert_eq!(row[0], Value::Int(2));
        assert_eq!(row[2], Value::str("world"));
    }
}
