//! String dictionaries (paper §5.3).
//!
//! One dictionary per string attribute, built at data-loading time. A
//! *normal* dictionary supports equality mapped to integer equality; an
//! *ordered* dictionary additionally preserves lexicographic order
//! (`string_x < string_y  ⟺  int_x < int_y`), which lets `startsWith`
//! lower to a `[start, end]` integer range check (paper Table 2).

use std::collections::HashMap;
use std::sync::Arc;

/// An immutable string dictionary.
#[derive(Debug, Clone)]
pub struct StringDict {
    values: Vec<Arc<str>>,
    index: HashMap<Arc<str>, i32>,
    ordered: bool,
}

impl StringDict {
    /// Build from attribute values. Duplicates collapse; `ordered` sorts the
    /// distinct values lexicographically before assigning codes (the
    /// "two-phase" dictionary of §5.3).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I, ordered: bool) -> StringDict {
        let mut distinct: Vec<&str> = values.into_iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        if !ordered {
            // A normal dictionary assigns codes in first-seen order; after
            // dedup we keep sorted order internally but that is still a
            // valid (if unadvertised) normal dictionary.
        }
        let values: Vec<Arc<str>> = distinct.into_iter().map(Arc::from).collect();
        let index = values
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as i32))
            .collect();
        StringDict {
            values,
            index,
            ordered,
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// The integer code of `s`, or `-1` when `s` never occurs in the data
    /// (a query constant absent from the attribute can never match, which
    /// the integer comparison then correctly reports).
    pub fn code(&self, s: &str) -> i32 {
        self.index.get(s).copied().unwrap_or(-1)
    }

    pub fn decode(&self, code: i32) -> &str {
        &self.values[code as usize]
    }

    /// Inclusive `[start, end]` code range of strings starting with
    /// `prefix`; `(0, -1)` (an empty range) when none do. Requires an
    /// ordered dictionary.
    pub fn prefix_range(&self, prefix: &str) -> (i32, i32) {
        assert!(self.ordered, "prefix_range requires an ordered dictionary");
        let start = self.values.partition_point(|v| &**v < prefix);
        let mut end = start;
        while end < self.values.len() && self.values[end].starts_with(prefix) {
            end += 1;
        }
        if start == end {
            (0, -1)
        } else {
            (start as i32, end as i32 - 1)
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<str>> {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(ordered: bool) -> StringDict {
        StringDict::build(["banana", "apple", "cherry", "apple", "apricot"], ordered)
    }

    #[test]
    fn codes_are_distinct_and_decode_roundtrips() {
        let d = dict(false);
        assert_eq!(d.len(), 4);
        for s in ["banana", "apple", "cherry", "apricot"] {
            let c = d.code(s);
            assert!(c >= 0);
            assert_eq!(d.decode(c), s);
        }
        assert_eq!(d.code("missing"), -1);
    }

    #[test]
    fn ordered_dictionary_preserves_order() {
        let d = dict(true);
        // apple < apricot < banana < cherry
        assert!(d.code("apple") < d.code("apricot"));
        assert!(d.code("apricot") < d.code("banana"));
        assert!(d.code("banana") < d.code("cherry"));
    }

    #[test]
    fn prefix_range_matches_paper_semantics() {
        let d = dict(true);
        let (s, e) = d.prefix_range("ap");
        // Exactly apple and apricot fall in [s, e].
        assert_eq!((s, e), (d.code("apple"), d.code("apricot")));
        // startsWith(x, "ap")  ⟺  s <= code(x) <= e   (paper Table 2)
        for v in ["apple", "apricot", "banana", "cherry"] {
            let c = d.code(v);
            assert_eq!(v.starts_with("ap"), c >= s && c <= e, "{v}");
        }
        assert_eq!(d.prefix_range("zzz"), (0, -1));
        let all = d.prefix_range("");
        assert_eq!(all, (0, d.len() as i32 - 1));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn prefix_range_requires_ordered() {
        dict(false).prefix_range("ap");
    }
}
