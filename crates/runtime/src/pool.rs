//! Memory pools (paper Appendix D.1).
//!
//! Generated C replaces hot-path `malloc` calls with bump allocation out of
//! pools sized by worst-case cardinality analysis. The interpreter uses
//! this Rust twin so the same IR runs unmodified, and so tests can observe
//! allocation counts (the optimization's effect is *fewer allocator
//! calls*, which we assert on directly).

/// A bump-allocating pool of default-initialised items.
#[derive(Debug)]
pub struct Pool<T> {
    items: Vec<T>,
    next: usize,
    /// Number of times the pool had to fall back to growing (zero when the
    /// cardinality estimate was sufficient).
    pub overflows: u64,
}

impl<T: Default + Clone> Pool<T> {
    pub fn with_capacity(cap: usize) -> Pool<T> {
        Pool {
            items: vec![T::default(); cap],
            next: 0,
            overflows: 0,
        }
    }

    /// Allocate one item; returns its index. Growth beyond the initial
    /// capacity doubles the backing store and is counted in `overflows`
    /// (Appendix D.1 discusses exactly this fallback policy).
    pub fn alloc(&mut self) -> usize {
        if self.next == self.items.len() {
            self.overflows += 1;
            let grow_to = (self.items.len() * 2).max(16);
            self.items.resize(grow_to, T::default());
        }
        let i = self.next;
        self.next += 1;
        i
    }

    pub fn get(&self, i: usize) -> &T {
        &self.items[i]
    }

    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.items[i]
    }

    /// Items allocated so far.
    pub fn allocated(&self) -> usize {
        self.next
    }

    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Reset without releasing memory (pools are reused across queries in a
    /// long-running process).
    pub fn clear(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_without_overflow() {
        let mut p: Pool<[u64; 4]> = Pool::with_capacity(10);
        let ids: Vec<usize> = (0..10).map(|_| p.alloc()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert_eq!(p.overflows, 0);
        assert_eq!(p.allocated(), 10);
    }

    #[test]
    fn overflow_grows_and_counts() {
        let mut p: Pool<u32> = Pool::with_capacity(2);
        for _ in 0..5 {
            p.alloc();
        }
        assert!(p.overflows >= 1);
        assert_eq!(p.allocated(), 5);
        assert!(p.capacity() >= 5);
    }

    #[test]
    fn clear_reuses_storage() {
        let mut p: Pool<u32> = Pool::with_capacity(4);
        let a = p.alloc();
        *p.get_mut(a) = 7;
        p.clear();
        let b = p.alloc();
        assert_eq!(a, b);
        assert_eq!(p.allocated(), 1);
    }
}
