//! Dynamically-typed runtime values with total equality/ordering/hashing —
//! the currency of the Volcano engine and the IR interpreter (group-by keys
//! require `Eq + Hash`, sort keys require `Ord`).

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A runtime value. Dates and single characters are carried as `Int`
/// (`yyyymmdd` / ASCII code respectively), mirroring the generated C.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i32),
    Long(i64),
    Double(f64),
    Str(Arc<str>),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(s.into())
    }

    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v as i64,
            Value::Long(v) => *v,
            Value::Bool(b) => *b as i64,
            other => panic!("as_i64 on {other:?}"),
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Long(v) => *v as f64,
            Value::Double(v) => *v,
            other => panic!("as_f64 on {other:?}"),
        }
    }

    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("as_bool on {other:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("as_str on {other:?}"),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Long(_) | Value::Double(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: numeric kinds compare by value (so `Int(1) == Long(1)`),
    /// distinct kinds by tag, doubles by IEEE total order.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Long(a), Long(b)) => a.cmp(b),
            (Int(a), Long(b)) => (*a as i64).cmp(b),
            (Long(a), Int(b)) => a.cmp(&(*b as i64)),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Long(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Long(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => b.hash(state),
            // Numeric kinds hash consistently with the numeric equality
            // above: integers hash as i64, doubles that are whole numbers
            // hash as their integer value.
            Value::Int(v) => (*v as i64).hash(state),
            Value::Long(v) => v.hash(state),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    (*v as i64).hash(state)
                } else {
                    v.to_bits().hash(state)
                }
            }
            Value::Str(s) => s.hash(state),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn mixed_numeric_equality_and_hash_agree() {
        assert_eq!(Value::Int(5), Value::Long(5));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Long(5)));
        assert_eq!(Value::Int(5), Value::Double(5.0));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Double(5.0)));
        assert_ne!(Value::Int(5), Value::Double(5.5));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            Value::str("b"),
            Value::Int(3),
            Value::Double(2.5),
            Value::Null,
            Value::str("a"),
            Value::Long(1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Long(1));
        assert_eq!(vals[2], Value::Double(2.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_i64(), 7);
        assert_eq!(Value::Double(1.5).as_f64(), 1.5);
        assert_eq!(Value::str("x").as_str(), "x");
        assert!(Value::Null.is_null());
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "as_i64")]
    fn wrong_accessor_panics() {
        Value::str("x").as_i64();
    }
}
