//! SQL `LIKE` matching over runtime strings.
//!
//! Lives here (rather than in the Volcano engine where it started) because
//! every execution tier needs it: the reference engine's scalar evaluator,
//! the IR interpreter's `StrLike` primitive, and — by way of the generated
//! runtimes — the native backends all implement the same semantics.

/// SQL LIKE with `%` wildcards only (what TPC-H uses): the pattern is split
/// on `%`; segments must occur in order, anchored at the ends when the
/// pattern does not start/end with `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let segments: Vec<&str> = pattern.split('%').collect();
    let anchored_start = !pattern.starts_with('%');
    let anchored_end = !pattern.ends_with('%');
    let mut pos = 0usize;
    for (i, seg) in segments.iter().enumerate() {
        if seg.is_empty() {
            continue;
        }
        if i == 0 && anchored_start {
            if !s.starts_with(seg) {
                return false;
            }
            pos = seg.len();
        } else if i == segments.len() - 1 && anchored_end {
            return s.len() >= pos + seg.len() && s.ends_with(seg);
        } else {
            match s[pos..].find(seg) {
                Some(at) => pos += at + seg.len(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_semantics() {
        assert!(like_match("special requests", "%special%requests%"));
        assert!(!like_match("special demands", "%special%requests%"));
        assert!(like_match("PROMO X", "PROMO%"));
        assert!(!like_match("X PROMO", "PROMO%"));
        assert!(like_match("a POLISHED STEEL", "%STEEL"));
        assert!(!like_match("STEEL a", "%STEEL"));
        assert!(like_match("anything", "%"));
        assert!(like_match("abcbc", "a%bc"));
        assert!(like_match("ab", "ab"));
        assert!(!like_match("ab", "abc"));
    }
}
