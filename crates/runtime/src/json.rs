//! Minimal hand-rolled JSON emission (the container has no serde; the
//! blobs this workspace writes — bench results, serving-stats snapshots,
//! the server's `stats` frame — are flat enough that a string builder is
//! the whole story).
//!
//! Lives in `dblab-runtime` because every layer that renders stats sits
//! above it: the serving engine's [`ServeStats`] renderer, the network
//! server's `stats` frame and the bench binaries all emit through the
//! same [`Obj`] builder, so the machine-readable blobs speak one format.
//!
//! [`ServeStats`]: ../../dblab_engine/service/struct.ServeStats.html

/// Escape a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An object under construction. Values passed to `raw` must already
/// be valid JSON (numbers, nested objects, arrays).
#[derive(Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj::default()
    }
    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.fields
            .push(format!("\"{}\": \"{}\"", escape(k), escape(v)));
        self
    }
    pub fn num(mut self, k: &str, v: f64) -> Obj {
        // JSON has no NaN/Infinity; callers use null for "not run".
        if v.is_finite() {
            self.fields.push(format!("\"{}\": {v}", escape(k)));
        } else {
            self.fields.push(format!("\"{}\": null", escape(k)));
        }
        self
    }
    pub fn int(mut self, k: &str, v: u64) -> Obj {
        self.fields.push(format!("\"{}\": {v}", escape(k)));
        self
    }
    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.fields.push(format!("\"{}\": {v}", escape(k)));
        self
    }
    pub fn raw(mut self, k: &str, v: &str) -> Obj {
        self.fields.push(format!("\"{}\": {}", escape(k), v));
        self
    }
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// A JSON array from already-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_escapes_and_nests() {
        let inner = Obj::new().int("n", 3).build();
        let blob = Obj::new()
            .str("name", "a\"b\n")
            .num("nan", f64::NAN)
            .bool("ok", true)
            .raw("inner", &inner)
            .raw("list", &array(vec!["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(
            blob,
            "{\"name\": \"a\\\"b\\n\", \"nan\": null, \"ok\": true, \
             \"inner\": {\"n\": 3}, \"list\": [1, 2]}"
        );
    }
}
