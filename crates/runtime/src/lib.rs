//! # dblab-runtime — the execution-time substrate
//!
//! Everything a running query touches: dynamic [`value::Value`]s, columnar
//! [`table::Table`]s with `.tbl` IO (format-compatible with TPC-H `dbgen`
//! output), the *generic* hash structures whose cost profile the generated
//! unspecialized C mirrors ([`hash`]), order-preserving string dictionaries
//! (paper §5.3), and memory pools (Appendix D.1).
//!
//! The Volcano reference engine, the IR interpreter and the TPC-H data
//! generator are all built on this crate.

pub mod hash;
pub mod json;
pub mod like;
pub mod pool;
pub mod string_dict;
pub mod table;
pub mod value;

pub use string_dict::StringDict;
pub use table::{ColData, Database, Table};
pub use value::Value;
