//! Hash structures with the cost profiles the compiler reasons about.
//!
//! * [`ChainedMap`] / [`ChainedMultiMap`] — separate chaining with one heap
//!   node per entry. This is the *generic* structure (our GLib stand-in)
//!   that unspecialized generated code uses; its malloc-per-insert,
//!   pointer-chasing profile is exactly what the paper's two/three-level
//!   stacks pay for.
//! * [`OpenMap`] — open addressing with linear probing over a flat array;
//!   the shape hash-table specialization lowers to (§5.2, Appendix B.2).
//!
//! The IR interpreter executes *abstract* HashMap/MultiMap nodes on these,
//! and the criterion micro-benchmarks compare them directly.

use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// A fast, deterministic FxHash-style hasher (we avoid SipHash's per-key
/// cost; HashDoS is not a concern for a query engine's internal tables).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    fn write_u8(&mut self, b: u8) {
        self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
    }
    fn write_u32(&mut self, v: u32) {
        self.state = (self.state.rotate_left(5) ^ v as u64).wrapping_mul(SEED);
    }
    fn write_u64(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

fn hash_one<K: Hash>(k: &K) -> u64 {
    FxBuildHasher::default().hash_one(k)
}

// ---------------------------------------------------------------------
// Chained hash map (generic / GLib-like)
// ---------------------------------------------------------------------

struct Node<K, V> {
    key: K,
    value: V,
    next: Option<Box<Node<K, V>>>,
}

/// Separate-chaining hash map; one boxed node per entry.
pub struct ChainedMap<K, V> {
    buckets: Vec<Option<Box<Node<K, V>>>>,
    len: usize,
}

impl<K: Hash + Eq, V> Default for ChainedMap<K, V> {
    fn default() -> Self {
        Self::with_buckets(16)
    }
}

impl<K: Hash + Eq, V> ChainedMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_buckets(n: usize) -> Self {
        ChainedMap {
            buckets: (0..n.next_power_of_two()).map(|_| None).collect(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket(&self, key: &K) -> usize {
        (hash_one(key) as usize) & (self.buckets.len() - 1)
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.buckets[self.bucket(key)].as_deref();
        while let Some(node) = cur {
            if node.key == *key {
                return Some(&node.value);
            }
            cur = node.next.as_deref();
        }
        None
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let b = self.bucket(key);
        let mut cur = self.buckets[b].as_deref_mut();
        while let Some(node) = cur {
            if node.key == *key {
                return Some(&mut node.value);
            }
            cur = node.next.as_deref_mut();
        }
        None
    }

    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(v) = self.get_mut(&key) {
            return Some(std::mem::replace(v, value));
        }
        self.grow_if_needed();
        let b = self.bucket(&key);
        let next = self.buckets[b].take();
        self.buckets[b] = Some(Box::new(Node { key, value, next }));
        self.len += 1;
        None
    }

    /// The aggregation workhorse: return the value for `key`, inserting
    /// `init()` on first sight.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, init: F) -> &mut V {
        self.grow_if_needed();
        let b = self.bucket(&key);
        let mut exists = false;
        let mut cur = self.buckets[b].as_deref();
        while let Some(node) = cur {
            if node.key == key {
                exists = true;
                break;
            }
            cur = node.next.as_deref();
        }
        if !exists {
            let next = self.buckets[b].take();
            self.buckets[b] = Some(Box::new(Node {
                key,
                value: init(),
                next,
            }));
            self.len += 1;
            return &mut self.buckets[b].as_deref_mut().expect("just inserted").value;
        }
        let mut cur = self.buckets[b].as_deref_mut();
        while let Some(node) = cur {
            if node.key == key {
                return &mut node.value;
            }
            cur = node.next.as_deref_mut();
        }
        unreachable!("key vanished between probes")
    }

    fn grow_if_needed(&mut self) {
        if self.len < self.buckets.len() * 3 / 4 {
            return;
        }
        let new_n = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, (0..new_n).map(|_| None).collect());
        for mut head in old.into_iter().flatten() {
            loop {
                let next = head.next.take();
                let b = (hash_one(&head.key) as usize) & (new_n - 1);
                head.next = self.buckets[b].take();
                self.buckets[b] = Some(head);
                match next {
                    Some(n) => head = n,
                    None => break,
                }
            }
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.buckets.iter().flat_map(|b| {
            let mut out = Vec::new();
            let mut cur = b.as_deref();
            while let Some(node) = cur {
                out.push((&node.key, &node.value));
                cur = node.next.as_deref();
            }
            out
        })
    }
}

// ---------------------------------------------------------------------
// Chained multi-map (hash join build side)
// ---------------------------------------------------------------------

/// key -> bag of values, separate chaining (the paper's `MultiMap`).
pub struct ChainedMultiMap<K, V> {
    inner: ChainedMap<K, Vec<V>>,
    total: usize,
}

impl<K: Hash + Eq + Clone, V> Default for ChainedMultiMap<K, V> {
    fn default() -> Self {
        ChainedMultiMap {
            inner: ChainedMap::new(),
            total: 0,
        }
    }
}

impl<K: Hash + Eq + Clone, V> ChainedMultiMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_binding(&mut self, key: K, value: V) {
        self.inner.get_or_insert_with(key, Vec::new).push(value);
        self.total += 1;
    }

    /// All values bound to `key` (the paper's `get` + `match Some`).
    pub fn get(&self, key: &K) -> &[V] {
        self.inner.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn key_count(&self) -> usize {
        self.inner.len()
    }

    pub fn value_count(&self) -> usize {
        self.total
    }
}

// ---------------------------------------------------------------------
// Open-addressing map (the specialized shape)
// ---------------------------------------------------------------------

/// Open addressing with linear probing over one flat allocation — the
/// layout hash-table specialization produces.
pub struct OpenMap<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

impl<K: Hash + Eq, V> OpenMap<K, V> {
    /// `capacity` is sized up to the next power of two ≥ 2 * capacity so the
    /// table never exceeds 50% load (no resize on the hot path — the
    /// compiler sizes it from cardinality analysis, Appendix D.1).
    pub fn with_capacity(capacity: usize) -> Self {
        let n = (capacity.max(1) * 2).next_power_of_two();
        OpenMap {
            slots: (0..n).map(|_| None).collect(),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn probe(&self, key: &K) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = (hash_one(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Some((k, _)) if k == key => return i,
                None => return i,
                _ => i = (i + 1) & mask,
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots[self.probe(key)].as_ref().map(|(_, v)| v)
    }

    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, init: F) -> &mut V {
        assert!(
            self.len * 2 < self.slots.len(),
            "OpenMap sized too small (cardinality analysis bug)"
        );
        let i = self.probe(&key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, init()));
            self.len += 1;
        }
        self.slots[i].as_mut().map(|(_, v)| v).expect("occupied")
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().flatten().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_map_insert_get_grow() {
        let mut m: ChainedMap<i64, i64> = ChainedMap::with_buckets(2);
        for i in 0..1000 {
            assert_eq!(m.insert(i, i * 10), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 10)));
        }
        assert_eq!(m.get(&-1), None);
        assert_eq!(m.insert(5, 99), Some(50));
        assert_eq!(m.get(&5), Some(&99));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn chained_map_get_or_insert() {
        let mut m: ChainedMap<String, i32> = ChainedMap::new();
        *m.get_or_insert_with("a".to_string(), || 0) += 1;
        *m.get_or_insert_with("a".to_string(), || 0) += 1;
        *m.get_or_insert_with("b".to_string(), || 10) += 1;
        assert_eq!(m.get(&"a".to_string()), Some(&2));
        assert_eq!(m.get(&"b".to_string()), Some(&11));
    }

    #[test]
    fn chained_map_iteration_covers_all() {
        let mut m: ChainedMap<i64, i64> = ChainedMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        let mut seen: Vec<i64> = m.iter().map(|(k, _)| *k).collect();
        seen.sort();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multimap_bindings() {
        let mut mm: ChainedMultiMap<i32, &str> = ChainedMultiMap::new();
        mm.add_binding(1, "a");
        mm.add_binding(1, "b");
        mm.add_binding(2, "c");
        assert_eq!(mm.get(&1), &["a", "b"]);
        assert_eq!(mm.get(&2), &["c"]);
        assert_eq!(mm.get(&3), &[] as &[&str]);
        assert_eq!(mm.key_count(), 2);
        assert_eq!(mm.value_count(), 3);
    }

    #[test]
    fn open_map_basics() {
        let mut m: OpenMap<i64, i64> = OpenMap::with_capacity(100);
        for i in 0..100 {
            *m.get_or_insert_with(i, || 0) = i * 2;
        }
        for i in 0..100 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.get(&1000), None);
        assert_eq!(m.len(), 100);
    }

    #[test]
    #[should_panic(expected = "sized too small")]
    fn open_map_overflow_is_loud() {
        let mut m: OpenMap<i64, i64> = OpenMap::with_capacity(2);
        for i in 0..100 {
            m.get_or_insert_with(i, || 0);
        }
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h1 = hash_one(&42i64);
        let h2 = hash_one(&42i64);
        assert_eq!(h1, h2);
        assert_ne!(hash_one(&1i64), hash_one(&2i64));
        assert_ne!(hash_one(&"abc"), hash_one(&"abd"));
    }
}
