//! # dblab — a multi-level DSL-stack query compiler
//!
//! Facade crate re-exporting the whole workspace. See `README.md` for a
//! quickstart and `DESIGN.md` for the architecture — §4 documents the
//! contract-checked pass manager that drives the stack.

pub use dblab_catalog as catalog;
pub use dblab_codegen as codegen;
pub use dblab_engine as engine;
pub use dblab_frontend as frontend;
pub use dblab_interp as interp;
pub use dblab_ir as ir;
pub use dblab_legobase as legobase;
pub use dblab_runtime as runtime;
pub use dblab_tpch as tpch;
pub use dblab_transform as transform;
