//! Wire-protocol suite: real sockets against a live [`Server`].
//!
//! * the prepare/execute/stats/close happy path returns oracle-correct
//!   rows and well-formed frames;
//! * malformed input — garbage length prefixes, unknown opcodes, runt
//!   payloads, unknown specs and statement ids — gets an explicit typed
//!   `ERROR` frame, never a hang (and only framing errors cost the
//!   connection);
//! * N concurrent clients hammering a shared server all get
//!   oracle-correct results;
//! * a saturated admission queue sheds with `busy` frames while every
//!   admitted request still answers correctly;
//! * an exhausted per-request deadline is a typed `timeout` frame, not a
//!   hung worker.
//!
//! The engine runs with the native tier disabled: tier 0 (the
//! interpreter) serves everything, so the suite needs no C toolchain and
//! exercises pure protocol/admission behavior. The loadgen CI smoke
//! covers the tier-up path end to end.

use std::path::PathBuf;
use std::time::Duration;

use dblab::codegen::same_normalized;
use dblab::engine::service::{EngineOptions, NativeChoice};
use dblab::engine::{self};
use dblab::tpch;
use dblab_server::protocol::{self, OP_ERROR, OP_EXECUTE, OP_PREPARE, OP_RESULT};
use dblab_server::{tpch_resolver, Client, ClientError, ErrorCode, Server, ServerOptions};

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_server_it_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

/// An interp-only server (no toolchain dependency), small knobs
/// overridable per test.
fn start_server(
    db: &dblab::runtime::Database,
    data: &std::path::Path,
    patch: impl FnOnce(&mut ServerOptions),
) -> Server {
    let mut opts = ServerOptions {
        engine: EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_server_it_gen"),
            native: NativeChoice::Disabled,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    };
    patch(&mut opts);
    Server::start(&db.schema, data, tpch_resolver(), opts).expect("start server")
}

fn oracle(db: &dblab::runtime::Database, q: usize) -> String {
    engine::execute_program(&tpch::queries::query(q), db).to_text()
}

#[test]
fn happy_path_prepare_execute_stats_close() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |_| {});
    let expect = oracle(&db, 6);

    let mut c = Client::connect(server.addr()).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    assert_eq!(stmt, 1, "first statement id in a fresh session");
    let reply = c.execute(stmt).expect("execute");
    assert!(!reply.native(), "native tier is disabled; interp serves");
    assert_eq!(reply.tier_name(), "interp", "Disabled turns off jit too");
    assert!(reply.query_ms >= 0.0);
    assert!(
        same_normalized(&expect, &reply.rows),
        "served rows diverge from the oracle:\noracle:\n{expect}\ngot:\n{}",
        reply.rows
    );

    let stats = c.stats().expect("stats frame");
    for key in [
        "\"server\"",
        "\"engine\"",
        "\"executed\"",
        "\"queue_cap\"",
        "\"queries\"",
    ] {
        assert!(stats.contains(key), "stats JSON missing {key}: {stats}");
    }
    c.close().expect("close handshake");

    let report = server.shutdown();
    assert_eq!(report.connections, 1);
    assert_eq!(report.executed, 1);
    assert_eq!(report.shed, 0);
    assert_eq!(report.timeouts, 0);
}

#[test]
fn the_same_spec_is_prepared_once_across_sessions() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |_| {});
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    let sa = a.prepare("tpch:1").expect("prepare a");
    let sb = b.prepare("tpch:1").expect("prepare b");
    assert_eq!((sa, sb), (1, 1), "per-session ids both start at 1");
    // One shared prepared query behind both sessions: the engine-wide
    // snapshot lists exactly one entry for the spec.
    let stats = server.engine().stats();
    assert_eq!(
        stats
            .queries
            .iter()
            .filter(|(name, _)| name == "srv_tpch_1")
            .count(),
        1,
        "sessions share one prepared handle per spec: {stats:?}"
    );
    drop((a, b));
    server.shutdown();
}

#[test]
fn garbage_length_prefix_gets_an_error_frame_then_the_socket_closes() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |_| {});
    let mut c = Client::connect(server.addr()).expect("connect");
    // A length prefix far above MAX_FRAME: framing cannot resync.
    c.send_bytes(&u32::MAX.to_be_bytes()).expect("send garbage");
    let f = c
        .recv_raw()
        .expect("error frame")
        .expect("one frame before close");
    assert_eq!(f.opcode, OP_ERROR);
    let (code, _) = protocol::decode_error(&f.payload).expect("typed error");
    assert_eq!(code, ErrorCode::Malformed);
    assert_eq!(c.recv_raw().expect("clean close"), None, "server hung up");
    let report = server.shutdown();
    assert_eq!(report.malformed, 1);
}

#[test]
fn recoverable_malformed_requests_keep_the_connection() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |_| {});
    let expect = oracle(&db, 6);
    let mut c = Client::connect(server.addr()).expect("connect");

    // Unknown opcode: typed error, session lives.
    c.send_raw(0x7F, 1, b"").expect("send");
    let f = c.recv_raw().expect("frame").expect("reply");
    assert_eq!((f.opcode, f.seq), (OP_ERROR, 1));
    assert_eq!(
        protocol::decode_error(&f.payload).unwrap().0,
        ErrorCode::Malformed
    );

    // Runt execute payload (3 bytes, not a u32): typed error.
    c.send_raw(OP_EXECUTE, 2, &[1, 2, 3]).expect("send");
    let f = c.recv_raw().expect("frame").expect("reply");
    assert_eq!(
        protocol::decode_error(&f.payload).unwrap().0,
        ErrorCode::Malformed
    );

    // Empty prepare spec: typed error.
    c.send_raw(OP_PREPARE, 3, b"").expect("send");
    let f = c.recv_raw().expect("frame").expect("reply");
    assert_eq!(
        protocol::decode_error(&f.payload).unwrap().0,
        ErrorCode::Malformed
    );

    // Unknown query spec and unknown statement id: `unknown`, not a drop.
    let err = c.prepare("tpch:99").expect_err("spec out of range");
    assert_eq!(err.code(), Some(ErrorCode::Unknown));
    let err = c.execute(42).expect_err("statement never prepared");
    assert_eq!(err.code(), Some(ErrorCode::Unknown));

    // After all that abuse the session still serves correct rows.
    let stmt = c.prepare("tpch:6").expect("prepare still works");
    let reply = c.execute(stmt).expect("execute still works");
    assert!(same_normalized(&expect, &reply.rows));
    c.close().expect("close");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_oracle_correct_results() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |o| o.workers = 4);
    let queries = [1usize, 6];
    let oracles: Vec<String> = queries.iter().map(|&q| oracle(&db, q)).collect();
    let addr = server.addr();

    std::thread::scope(|s| {
        for client_id in 0..8 {
            let (oracles, queries) = (&oracles, &queries);
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let stmts: Vec<u32> = queries
                    .iter()
                    .map(|q| c.prepare(&format!("tpch:{q}")).expect("prepare"))
                    .collect();
                for round in 0..3 {
                    let qi = (client_id + round) % queries.len();
                    let reply = c.execute(stmts[qi]).expect("execute");
                    assert!(
                        same_normalized(&oracles[qi], &reply.rows),
                        "client {client_id} round {round}: Q{} diverged",
                        queries[qi]
                    );
                }
                c.close().expect("close");
            });
        }
    });
    let report = server.shutdown();
    assert_eq!(report.connections, 8);
    assert_eq!(report.executed, 8 * 3);
    assert_eq!(report.exec_errors, 0);
}

#[test]
fn a_full_admission_queue_sheds_with_busy_frames() {
    let (db, data) = setup();
    // One slow worker, a one-deep queue: a burst must shed.
    let server = start_server(&db, &data, |o| {
        o.workers = 1;
        o.queue_cap = 1;
        o.debug_worker_delay = Duration::from_millis(200);
    });
    let expect = oracle(&db, 6);

    let mut c = Client::connect(server.addr()).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    // Pipeline a burst of executes without waiting for answers.
    const BURST: u32 = 6;
    for seq in 1..=BURST {
        c.send_raw(OP_EXECUTE, seq, &stmt.to_be_bytes())
            .expect("send");
    }
    // Every request answers — the shed ones immediately, the admitted
    // ones after the slow worker gets to them.
    let (mut results, mut busy) = (0u32, 0u32);
    for _ in 0..BURST {
        let f = c.recv_raw().expect("read").expect("every request answers");
        assert!((1..=BURST).contains(&f.seq), "echoed seq");
        match f.opcode {
            OP_RESULT => {
                let (_, _, rows) = protocol::decode_result(&f.payload).expect("result payload");
                assert!(
                    same_normalized(&expect, &rows),
                    "admitted result must be correct"
                );
                results += 1;
            }
            OP_ERROR => {
                let (code, msg) = protocol::decode_error(&f.payload).expect("typed error");
                assert_eq!(code, ErrorCode::Busy, "only busy errors expected: {msg}");
                assert!(msg.contains("queue full"), "self-describing shed: {msg}");
                busy += 1;
            }
            other => panic!("unexpected opcode {other:#x}"),
        }
    }
    assert_eq!(results + busy, BURST);
    assert!(results >= 1, "at least the first request is admitted");
    assert!(
        busy >= BURST - 2,
        "a 1-worker/1-slot server under a {BURST}-burst sheds most of it (shed {busy})"
    );
    assert_eq!(server.shed_count(), busy as u64);
    server.shutdown();
}

#[test]
fn an_exhausted_deadline_is_a_typed_timeout_frame() {
    let (db, data) = setup();
    // The fault-injection delay exceeds the whole deadline, so the
    // request deterministically ages out while queued.
    let server = start_server(&db, &data, |o| {
        o.workers = 1;
        o.deadline = Duration::from_millis(10);
        o.debug_worker_delay = Duration::from_millis(80);
    });
    let mut c = Client::connect(server.addr()).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    let err = c.execute(stmt).expect_err("deadline must trip");
    assert_eq!(
        err.code(),
        Some(ErrorCode::Timeout),
        "typed timeout, got: {err}"
    );
    match &err {
        ClientError::Server { message, .. } => {
            assert!(message.contains("deadline"), "self-describing: {message}")
        }
        other => panic!("expected a server error, got {other}"),
    }
    assert_eq!(server.timeout_count(), 1);
    // The worker survives the timeout: the next request is also answered
    // (another typed timeout under this server's 10ms budget), not hung.
    let err = c.execute(stmt).expect_err("same budget, same verdict");
    assert_eq!(err.code(), Some(ErrorCode::Timeout));
    assert_eq!(server.timeout_count(), 2);
    server.shutdown();
}
