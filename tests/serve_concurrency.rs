//! Concurrent-serving suite: a [`PreparedQuery`] handle is shared by N
//! executor threads while the background tier-up hot-swaps the native
//! executable underneath them. The contract under test:
//!
//! * **every** result — before, during and after the swap — matches the
//!   Volcano oracle (the swap is a performance event, never a semantic
//!   one);
//! * the swap is **observed**: the handle reports exactly one swap, the
//!   final tier is native, and the executor threads see the tier change
//!   (at least one pre-swap interpreter run and, once the swap lands, at
//!   least one native run);
//! * a degraded engine (no native tier) serves the same threads from the
//!   interpreter indefinitely, without errors.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dblab::codegen::{backend, same_normalized};
use dblab::engine::service::{EngineOptions, NativeChoice, QueryEngine, Tier};
use dblab::engine::{self};
use dblab::tpch;

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_serve_it_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

#[test]
fn threads_race_the_hot_swap_and_every_result_matches_the_oracle() {
    if !backend("gcc").expect("registered").available() {
        eprintln!("(skipping: gcc not present)");
        return;
    }
    let (db, data) = setup();
    let schema = db.schema.clone();
    let engine = QueryEngine::with_options(
        &schema,
        EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_serve_it_gen"),
            workers: 2,
            native: NativeChoice::Backend("gcc".into()),
            ..EngineOptions::default()
        },
    )
    .expect("engine");

    for q in [1usize, 6] {
        let prog = tpch::queries::query(q);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let handle = engine
            .prepare_named(&prog, &format!("serve_it_q{q}"))
            .expect("prepare");
        // An in-process tier serves first — interp, or already jit if the
        // microsecond jit build won the race against this very assert.
        assert_ne!(handle.tier(), Tier::Native, "native can't land this fast");

        // Four executor threads hammer the handle until the swap has
        // landed AND they have each seen the native tier at least once;
        // the main thread just waits for the tier-up like a client would.
        // `gave_up` keeps the executors from spinning forever when the
        // tier-up never lands — the test must then *fail* on the
        // `swap_landed` assert below, not hang until the job timeout.
        let stop = AtomicBool::new(false);
        let gave_up = AtomicBool::new(false);
        let swapped = std::thread::scope(|s| {
            let mut executors = Vec::new();
            for _ in 0..4 {
                let handle = handle.clone();
                let (oracle, data, stop, gave_up) = (&oracle, &data, &stop, &gave_up);
                executors.push(s.spawn(move || {
                    let mut tiers = (0u32, 0u32); // (in-process, native) runs
                    loop {
                        let run = handle.execute(data).expect("serve");
                        assert!(
                            same_normalized(oracle, &run.output.stdout),
                            "Q{q} diverged from the oracle on tier {} \
                             (swap #{}):\noracle:\n{oracle}\ngot:\n{}",
                            run.tier,
                            handle.swap_count(),
                            run.output.stdout
                        );
                        match run.tier {
                            Tier::Interp | Tier::Jit => tiers.0 += 1,
                            Tier::Native => tiers.1 += 1,
                        }
                        // Keep executing until the swap landed and this
                        // thread has observed the native tier — unless
                        // the main thread gave up waiting.
                        if stop.load(Ordering::Acquire)
                            && (tiers.1 > 0 || gave_up.load(Ordering::Acquire))
                        {
                            return tiers;
                        }
                    }
                }));
            }
            let swapped = handle.wait_for_native(Duration::from_secs(300));
            if !swapped {
                gave_up.store(true, Ordering::Release);
            }
            stop.store(true, Ordering::Release);
            let totals = executors
                .into_iter()
                .map(|t| t.join().expect("executor thread"))
                .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
            (swapped, totals)
        });
        let (swap_landed, (inprocess_runs, native_runs)) = swapped;
        assert!(
            swap_landed,
            "tier-up must land: {:?}",
            handle.stats().pinned
        );
        let stats = handle.stats();
        assert_eq!(
            stats.tier_stats(Tier::Native).swaps,
            1,
            "exactly one native swap"
        );
        assert_eq!(handle.tier(), Tier::Native);
        assert!(
            native_runs >= 4,
            "every thread observed the swapped-in native tier"
        );
        // gcc takes orders of magnitude longer than one in-process run at
        // this scale, so the pre-swap window is reliably observed.
        assert!(
            inprocess_runs >= 1,
            "at least one execution was served in-process before the swap"
        );
        let ladder_runs: u64 = Tier::LADDER
            .iter()
            .map(|&t| stats.tier_stats(t).lat.runs)
            .sum();
        assert_eq!(ladder_runs, u64::from(inprocess_runs + native_runs));
        assert!(stats.first_result_ms.is_some());
        assert!(stats.tier_up.as_ref().expect("tier-up report").elapsed_ms >= 0.0);
        // The jit rung, when it landed first, must have swapped in far
        // earlier than the toolchain tier.
        if let Some(jit_ms) = stats.tier_stats(Tier::Jit).swap_ms {
            let native_ms = stats.tier_stats(Tier::Native).swap_ms.expect("landed");
            assert!(
                jit_ms <= native_ms,
                "jit ({jit_ms}ms) after native ({native_ms}ms)"
            );
        }
    }
}

#[test]
fn degraded_engine_serves_threads_from_the_interpreter_without_errors() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    let engine = QueryEngine::with_options(
        &schema,
        EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_serve_it_gen_degraded"),
            native: NativeChoice::Disabled,
            ..EngineOptions::default()
        },
    )
    .expect("engine");
    assert!(engine.degraded_reason().is_some());

    let prog = tpch::queries::query(6);
    let oracle = engine::execute_program(&prog, &db).to_text();
    let handle = engine
        .prepare_named(&prog, "serve_it_degraded")
        .expect("prepare");
    assert!(!handle.wait_for_native(Duration::from_secs(5)), "pinned");
    std::thread::scope(|s| {
        for _ in 0..4 {
            let handle = handle.clone();
            let (oracle, data) = (&oracle, &data);
            s.spawn(move || {
                for _ in 0..3 {
                    let run = handle.execute(data).expect("interp serves");
                    assert_eq!(run.tier, Tier::Interp);
                    assert!(same_normalized(oracle, &run.output.stdout));
                }
            });
        }
    });
    assert_eq!(handle.swap_count(), 0);
    assert!(handle.report().contains("tier interp permanently"));
}
