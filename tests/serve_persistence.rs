//! Cache-persistence suite: the source-level build cache must survive a
//! process restart through its on-disk index.
//!
//! A real restart cannot run inside one test process, so these tests
//! simulate its observable half: warm the cache (building real artifacts
//! and appending their index entries), then **drop every piece of
//! in-process state** (`build_cache::clear`, detach) exactly as an exit
//! would, re-attach the index like a fresh process, and assert the next
//! compile is `build_cached` with **zero build time** and a
//! **byte-identical artifact**.
//!
//! The persistence switch and the artifact table are process-global, so
//! the tests in this file serialize on one mutex.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use dblab::catalog::{ColType, Schema, TableDef};
use dblab::codegen::{backend, build_cache, Compiler};
use dblab::engine::service::{EngineOptions, NativeChoice, QueryEngine};
use dblab::frontend::expr::{col, lit_i};
use dblab::frontend::qplan::{AggFunc, QPlan, QueryProgram};
use dblab::transform::StackConfig;

/// Serializes the tests: persistence attach/detach and `clear()` act on
/// process-wide state.
static PERSIST_LOCK: Mutex<()> = Mutex::new(());

fn unique_schema(table: &str) -> Schema {
    let mut schema = Schema::new(vec![TableDef::new(
        table,
        vec![("k", ColType::Int), ("v", ColType::Int)],
    )
    .with_primary_key(&["k"])]);
    let def = schema.table_mut(table);
    def.stats.row_count = 32;
    def.stats.int_max = vec![32; 2];
    def.stats.distinct = vec![8; 2];
    schema
}

fn agg_query(table: &str) -> QueryProgram {
    QueryProgram::new(QPlan::scan(table).select(col("v").gt(lit_i(1))).agg(
        vec![],
        vec![("n", AggFunc::Count), ("s", AggFunc::Sum(col("v")))],
    ))
}

/// A fresh gen dir for one test (stale indexes from earlier runs of the
/// same test binary would taint the cold-build assertions).
fn fresh_gen_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dblab_persist_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create gen dir");
    dir
}

#[test]
fn disk_index_revives_artifacts_across_a_simulated_restart() {
    if !backend("gcc").expect("registered").available() {
        eprintln!("(skipping: gcc not present)");
        return;
    }
    let _guard = PERSIST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_gen_dir("facade");
    let schema = unique_schema("pfacade");
    let prog = agg_query("pfacade");
    let compiler = Compiler::new(&schema)
        .config(&StackConfig::level5())
        .out_dir(&dir);

    // Warm phase: attach the (empty) index, build cold, keep the bytes.
    assert_eq!(build_cache::enable_persistence(&dir).expect("attach"), 0);
    let cold = compiler.compile_named(&prog, "persist_a").expect("gcc");
    assert!(!cold.build_cached, "first build is cold");
    assert!(cold.exe.build_time() > Duration::ZERO);
    let cold_path = cold.exe.artifact().expect("binary").to_path_buf();
    let cold_bytes = std::fs::read(&cold_path).expect("artifact bytes");
    assert!(
        std::fs::read_to_string(dir.join(build_cache::INDEX_FILE))
            .expect("index written")
            .lines()
            .any(|l| l.starts_with("v1\tgcc\t")),
        "the build appended its index entry"
    );

    // "Restart": drop all in-process cache state.
    build_cache::clear();
    build_cache::disable_persistence();

    // A compile with nothing reloaded is cold again (same source, new
    // artifact name — the in-memory table is gone and the index is
    // detached, so the toolchain must run).
    let re_cold = compiler.compile_named(&prog, "persist_b").expect("gcc");
    assert!(!re_cold.build_cached, "without the index the build is cold");

    // Fresh attach, like a new process: entries are restored and the next
    // compile is served from disk — zero build time, byte-identical
    // artifact (it IS the file the first process built).
    build_cache::clear();
    let loaded = build_cache::enable_persistence(&dir).expect("re-attach");
    assert!(loaded >= 1, "index restored {loaded} artifacts");
    let disk_before = build_cache::disk_stats();
    let warm = compiler.compile_named(&prog, "persist_c").expect("gcc");
    assert!(warm.build_cached, "restored entry serves the build");
    assert_eq!(warm.exe.build_time(), Duration::ZERO);
    let warm_path = warm.exe.artifact().expect("binary");
    let warm_bytes = std::fs::read(warm_path).expect("artifact bytes");
    assert_eq!(
        cold_bytes, warm_bytes,
        "the revived artifact is byte-identical to the original build"
    );
    assert_eq!(
        build_cache::disk_stats().since(&disk_before).hits,
        1,
        "the hit is attributed to the disk index"
    );
    build_cache::disable_persistence();
}

#[test]
fn query_engine_warm_start_skips_the_toolchain() {
    if !backend("gcc").expect("registered").available() {
        eprintln!("(skipping: gcc not present)");
        return;
    }
    let _guard = PERSIST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = fresh_gen_dir("engine");
    let schema = unique_schema("pengine");
    let prog = agg_query("pengine");
    let opts = || EngineOptions {
        gen_dir: dir.clone(),
        workers: 1,
        native: NativeChoice::Backend("gcc".into()),
        persist_cache: true,
        ..EngineOptions::default()
    };

    // First engine: cold tier-up, artifact recorded on disk.
    let cold_bytes;
    {
        let engine = QueryEngine::with_options(&schema, opts()).expect("engine");
        let q = engine
            .prepare_named(&prog, "persist_serve")
            .expect("prepare");
        assert!(q.wait_for_native(Duration::from_secs(300)), "tier-up lands");
        let up = q.stats().tier_up.expect("report");
        assert!(!up.build_cached, "first tier-up pays the toolchain");
        assert!(up.build_ms > 0.0);
        let index = std::fs::read_to_string(dir.join(build_cache::INDEX_FILE))
            .expect("index written by the tier-up");
        let artifact = dir.join(
            index
                .lines()
                .find_map(|l| l.split('\t').nth(3))
                .expect("artifact path recorded"),
        );
        cold_bytes = std::fs::read(&artifact).expect("artifact bytes");
    } // engine drops: workers join

    // Simulated restart: the caches a process exit would lose.
    build_cache::clear();
    build_cache::disable_persistence();
    dblab::transform::memo::clear();

    // Second engine over the same gen dir: the tier-up must be served
    // from the disk index — build cached, zero toolchain time.
    let engine = QueryEngine::with_options(&schema, opts()).expect("warm engine");
    let disk_before = build_cache::disk_stats();
    let q = engine
        .prepare_named(&prog, "persist_serve")
        .expect("prepare");
    assert!(q.wait_for_native(Duration::from_secs(300)), "warm tier-up");
    let up = q.stats().tier_up.expect("report");
    assert!(up.build_cached, "warm start skips gcc entirely");
    assert_eq!(up.build_ms, 0.0);
    let index = std::fs::read_to_string(dir.join(build_cache::INDEX_FILE)).expect("index");
    let artifact = dir.join(
        index
            .lines()
            .find_map(|l| l.split('\t').nth(3))
            .expect("artifact path recorded"),
    );
    assert_eq!(
        cold_bytes,
        std::fs::read(&artifact).expect("artifact bytes"),
        "the served artifact is byte-identical across the restart"
    );
    assert!(
        build_cache::disk_stats().since(&disk_before).hits >= 1,
        "the tier-up hit the disk index"
    );
    build_cache::disable_persistence();
}
