//! Backend conformance: every registered backend, run over the TPC-H
//! differential query set through the [`Compiler`] facade, must produce
//! output identical (normalized) to the Volcano oracle — and the native
//! backends must agree with each other on the exact same lowered program.
//!
//! The interpreter backend always runs (it needs no toolchain); the gcc
//! and rustc backends run whenever their toolchain is present and are
//! skipped (loudly) otherwise.

use std::path::PathBuf;

use dblab::codegen::{backends, same_normalized, Compiler};
use dblab::engine;
use dblab::tpch;
use dblab::transform::StackConfig;

/// Per-test data directories: the tests in this binary run on parallel
/// threads, so sharing one `.tbl` directory would let one test's
/// `write_all` truncate files another test's query binary is reading.
fn setup(tag: &str) -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dblab_conf_data_{tag}"));
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

/// Run every available backend over all 22 queries at `cfg`. Data and
/// per-query oracle results are computed once and shared across backends.
fn conformance_suite(cfg: &StackConfig, tag: &str) -> Vec<String> {
    let (db, data) = setup(tag);
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_conf_gen");
    let programs: Vec<_> = (1..=22).map(tpch::queries::query).collect();
    let oracles: Vec<String> = programs
        .iter()
        .map(|p| engine::execute_program(p, &db).to_text())
        .collect();
    let mut failures = Vec::new();
    for b in backends() {
        if !b.available() {
            eprintln!("SKIP backend `{}` (requires {})", b.name(), b.requirement());
            continue;
        }
        for (i, (prog, oracle)) in programs.iter().zip(&oracles).enumerate() {
            let n = i + 1;
            let name = format!("bc_q{n}_l{}_t{}_{}", cfg.levels, cfg.threads, b.name());
            let verdict = Compiler::new(&schema)
                .config(cfg)
                .backend(dblab::codegen::backend(b.name()).expect("registered"))
                .out_dir(&out)
                .compile_named(prog, &name)
                .and_then(|art| art.run(&data))
                .map(|r| same_normalized(oracle, &r.stdout));
            match verdict {
                Ok(true) => {}
                Ok(false) => failures.push(format!("Q{n} @ {} [{}]: mismatch", cfg.name, b.name())),
                Err(e) => failures.push(format!("Q{n} @ {} [{}]: {e}", cfg.name, b.name())),
            }
        }
    }
    failures
}

/// Every backend × the full five-level stack × all 22 queries.
#[test]
fn every_backend_matches_the_oracle_on_the_full_stack() {
    let failures = conformance_suite(&StackConfig::level5(), "l5");
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The two-level stack exercises the generic (unspecialized) container
/// path of each backend — the code the specialized levels bypass.
#[test]
fn every_backend_matches_the_oracle_on_the_generic_stack() {
    let failures = conformance_suite(&StackConfig::level2(), "l2");
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The morsel-parallel plans (`threads = 2`): every backend — the
/// interpreter executes `ParallelFor` as one logical worker, the native
/// backends spawn real threads — must still conform on all 22 queries.
#[test]
fn every_backend_matches_the_oracle_with_two_threads() {
    let mut cfg = StackConfig::level5();
    cfg.threads = 2;
    let failures = conformance_suite(&cfg, "l5t2");
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Same axis at `threads = 4`: more partitions, more merge interleavings.
#[test]
fn every_backend_matches_the_oracle_with_four_threads() {
    let mut cfg = StackConfig::level5();
    cfg.threads = 4;
    let failures = conformance_suite(&cfg, "l5t4");
    assert!(failures.is_empty(), "{failures:#?}");
}

/// `threads = 1` must be invisible end to end: the `parallelize-scans`
/// pass never enters the schedule, the config fingerprint (the pass- and
/// build-cache key component) is unchanged, and the emitted C/Rust is
/// exactly the serial text — no parallel runtime anywhere.
#[test]
fn threads_one_is_exactly_the_serial_stack() {
    let serial = StackConfig::level5();
    let mut explicit = StackConfig::level5();
    explicit.threads = 1;
    assert_eq!(serial.fingerprint(), explicit.fingerprint());

    let db = tpch::generate(0.002, &std::env::temp_dir().join("dblab_conf_t1"));
    let schema = db.schema.clone();
    for n in 1..=22 {
        let prog = tpch::queries::query(n);
        let cq = dblab::transform::compile(&prog, &schema, &explicit);
        assert!(
            cq.stages.iter().all(|st| st.name != "parallelize-scans"),
            "Q{n}: parallelize-scans ran at threads = 1"
        );
        for b in backends() {
            let src = b.emit(&cq.program, &schema);
            assert!(
                !src.contains("dblab_par_"),
                "Q{n} [{}]: serial emission references the parallel runtime",
                b.name()
            );
        }
    }
}

/// The native backends consume the *same* lowered program and must agree
/// with each other line for line (normalized), not just with the oracle.
#[test]
fn native_backends_agree_on_identical_programs() {
    let gcc = dblab::codegen::backend("gcc").unwrap();
    let rustc = dblab::codegen::backend("rustc").unwrap();
    if !gcc.available() || !rustc.available() {
        eprintln!("SKIP native agreement (needs both gcc and rustc)");
        return;
    }
    let (db, data) = setup("agree");
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_conf_gen");
    for n in [1, 3, 6, 10, 14, 19] {
        let prog = tpch::queries::query(n);
        let mut results = Vec::new();
        for bname in ["gcc", "rustc"] {
            let art = Compiler::new(&schema)
                .backend(dblab::codegen::backend(bname).unwrap())
                .out_dir(&out)
                .compile_named(&prog, &format!("bc_agree_q{n}_{bname}"))
                .expect("build");
            results.push(art.run(&data).expect("run").stdout);
        }
        assert!(
            same_normalized(&results[0], &results[1]),
            "Q{n}: gcc and rustc disagree:\ngcc:\n{}\nrustc:\n{}",
            results[0],
            results[1]
        );
    }
}
