//! Adversarial serving suite: hostile clients against the reactor.
//!
//! PR 7's thread-per-connection server could hide pathological-client
//! bugs behind the kernel's blocking `read`; the reactor owns its own
//! state machines, so this suite attacks exactly those seams:
//!
//! * slow-loris clients dripping one byte per tick must not starve a
//!   well-behaved client sharing the (single!) reactor thread;
//! * connections dropped mid-frame — inside the length prefix, inside
//!   the body — leave no half-dead state behind;
//! * a stalled reader that never drains its responses is shed by the
//!   write-backpressure policy (connection doomed, `write_overflows`
//!   counted), never allowed to wedge a worker or reactor thread;
//! * ≥256 concurrent sockets with pipelined requests all get
//!   oracle-correct answers while the server's thread and fd anatomy
//!   stays flat — the reactor's whole reason to exist;
//! * results crossing the streaming threshold arrive as
//!   `RESULT_CHUNK`/`RESULT_END` sequences byte-identical to the
//!   single-frame encoding, and a client cancelling mid-stream costs
//!   the server nothing;
//! * everything above also holds on the portable `poll(2)` backend.
//!
//! Interp-only engine (no toolchain dependency), tiny scale factor:
//! what's under test is the serving path, not the queries.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dblab::codegen::same_normalized;
use dblab::engine::service::{EngineOptions, NativeChoice};
use dblab::engine::{self};
use dblab::tpch;
use dblab_server::protocol::{
    self, OP_EXECUTE, OP_PREPARE, OP_PREPARED, OP_RESULT, OP_RESULT_CHUNK, OP_RESULT_END,
};
use dblab_server::{tpch_resolver, Client, Server, ServerOptions};

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_server_adv_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

/// An interp-only server with a deterministic thread anatomy (two
/// engine build workers), small knobs overridable per test.
fn start_server(
    db: &dblab::runtime::Database,
    data: &std::path::Path,
    patch: impl FnOnce(&mut ServerOptions),
) -> Server {
    let mut opts = ServerOptions {
        engine: EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_server_adv_gen"),
            native: NativeChoice::Disabled,
            workers: 2,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    };
    patch(&mut opts);
    Server::start(&db.schema, data, tpch_resolver(), opts).expect("start server")
}

fn oracle(db: &dblab::runtime::Database, q: usize) -> String {
    engine::execute_program(&tpch::queries::query(q), db).to_text()
}

/// `Threads:` from `/proc/self/status`; `None` off-procfs (the anatomy
/// assertions quietly skip there).
fn proc_threads() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

fn proc_fds() -> Option<u64> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count() as u64)
}

/// One raw wire frame as bytes (what [`protocol::write_frame`] emits),
/// for clients that want to send it one byte at a time.
fn frame_bytes(opcode: u8, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    protocol::write_frame(&mut buf, opcode, seq, payload).expect("encode frame");
    buf
}

/// Slow-loris clients dripping one byte per tick share a *single*
/// reactor thread with a fast client — the fast client must not be
/// starved (the old blocking design would have parked a reader thread
/// per loris; the reactor just sees slow sockets that are rarely
/// readable), and every loris still gets a correct answer once its
/// frame finally completes.
#[test]
fn slow_loris_drips_do_not_starve_fast_clients() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |o| o.io_threads = 1);
    let expect = oracle(&db, 6);
    let addr = server.addr();

    // Warm the prepared cache so the fast client's latency below is
    // pure serving path, not a first compile.
    let mut warm = Client::connect(addr).expect("connect");
    warm.prepare("tpch:6").expect("warm prepare");
    drop(warm);

    const LORISES: usize = 24;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..LORISES)
            .map(|_| {
                s.spawn(move || {
                    let mut sock = TcpStream::connect(addr).expect("loris connect");
                    sock.set_nodelay(true).ok();
                    sock.set_read_timeout(Some(Duration::from_secs(60))).ok();
                    for b in frame_bytes(OP_PREPARE, 1, b"tpch:6") {
                        sock.write_all(&[b]).expect("drip one byte");
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    // The dripped frame completes eventually; the reply
                    // must be a well-formed PREPARED.
                    let mut r = std::io::BufReader::new(sock);
                    let f = protocol::read_frame(&mut r)
                        .expect("read reply")
                        .expect("a reply, not a hangup");
                    assert_eq!((f.opcode, f.seq), (OP_PREPARED, 1));
                })
            })
            .collect();

        // While every loris is mid-drip (150ms of dripping each), the
        // fast client runs a whole prepare+execute round trip on the
        // same single reactor thread.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(30))).expect("connect");
        let stmt = c.prepare("tpch:6").expect("prepare while lorised");
        let reply = c.execute(stmt).expect("execute while lorised");
        assert!(same_normalized(&expect, &reply.rows), "rows diverge");
        c.close().expect("close");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "fast client starved behind {LORISES} slow lorises: {:?}",
            t0.elapsed()
        );
        for h in handles {
            h.join().expect("loris thread");
        }
    });
    let report = server.shutdown();
    assert_eq!(report.connections as usize, LORISES + 2);
    assert_eq!(report.malformed, 0);
}

/// Connections that die mid-frame — inside the length prefix, inside
/// the body, or right after a garbage prefix — leave nothing behind:
/// the reactor reaps them, a fresh client is served correctly, and the
/// open-connection gauge drains to zero.
#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |_| {});
    let expect = oracle(&db, 6);
    let addr = server.addr();

    for i in 0..21 {
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_nodelay(true).ok();
        let wire = frame_bytes(OP_PREPARE, 7, b"tpch:6");
        match i % 3 {
            // Die inside the 4-byte length prefix.
            0 => sock.write_all(&wire[..2]).expect("partial prefix"),
            // Die inside the body, prefix fully delivered.
            1 => sock.write_all(&wire[..7]).expect("partial body"),
            // A garbage length prefix, then vanish without reading the
            // error frame the server owes us.
            _ => sock.write_all(&u32::MAX.to_be_bytes()).expect("garbage"),
        }
        drop(sock); // mid-frame disconnect
    }

    // The server is unimpressed: a fresh session serves correct rows.
    let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(30))).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    let reply = c.execute(stmt).expect("execute");
    assert!(same_normalized(&expect, &reply.rows), "rows diverge");
    c.close().expect("close");

    // Every dead socket is reaped (the reactor sees the hangup as soon
    // as it polls); give the gauge a moment to drain.
    let t0 = Instant::now();
    while server.open_connections() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "{} connection(s) never reaped",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = server.shutdown();
    assert_eq!(report.connections, 22);
    // Only the 7 garbage-prefix sockets are malformed; dying mid-frame
    // is rude but not a protocol violation.
    assert_eq!(report.malformed, 7);
}

/// A stalled reader — hundreds of pipelined executes, never draining a
/// byte of response — hits the bounded write queue: the worker waits at
/// most `write_stall`, then the connection is shed as a write overflow.
/// Workers and reactors stay live throughout; a fresh client is served
/// immediately after.
#[test]
fn a_stalled_reader_is_shed_not_wedged() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |o| {
        o.queue_cap = 4096;
        o.write_buf_cap = 2048;
        o.write_stall = Duration::from_millis(250);
        // Clamp the kernel send buffer: without this, loopback TCP
        // auto-tunes it toward 4MB and absorbs minutes' worth of
        // responses before userspace backpressure can even engage.
        o.sock_sndbuf = 16 << 10;
        // Generous deadline: a timeout would answer with a tiny frame
        // where this test needs every response at full size.
        o.deadline = Duration::from_secs(600);
    });
    let expect = oracle(&db, 6);
    let addr = server.addr();

    // Q10 rows are ~2.7KB a pop — 400 pipelined responses (~1.1MB) bury
    // the 2KB write queue, the clamped send buffer, and the peer's
    // receive buffer several times over.
    let mut stalled = Client::connect_timeout(addr, Some(Duration::from_secs(60))).expect("c");
    let stmt = stalled.prepare("tpch:10").expect("prepare");
    for seq in 1..=400u32 {
        stalled
            .send_raw(OP_EXECUTE, seq, &stmt.to_be_bytes())
            .expect("pipeline execute");
    }
    // ...and never read a single reply. The server must shed us.
    let t0 = Instant::now();
    while server.overflow_count() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "stalled reader never shed: overflow_count still 0"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // No worker is wedged behind the corpse: a well-behaved client gets
    // correct rows with time to spare.
    let t0 = Instant::now();
    let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(30))).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    let reply = c.execute(stmt).expect("execute after the shed");
    assert!(same_normalized(&expect, &reply.rows), "rows diverge");
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "workers wedged behind a stalled reader: {:?}",
        t0.elapsed()
    );
    c.close().expect("close");
    drop(stalled);

    let report = server.shutdown();
    assert!(report.write_overflows >= 1, "{report:?}");
}

/// ≥256 concurrent sockets, four pipelined executes each, one
/// single-threaded driver: every reply matches the oracle, and the
/// server's thread and fd counts stay pinned to the reactor anatomy
/// instead of scaling with the socket count.
#[test]
fn pipelined_requests_across_256_sockets_match_the_oracle() {
    let (db, data) = setup();
    let (t_pre, fd_pre) = (proc_threads(), proc_fds());
    let server = start_server(&db, &data, |o| {
        o.queue_cap = 4096;
        // 1024 pipelined requests all queue at once; the deadline must
        // cover the whole backlog on a slow CI box, or tail requests
        // age out as timeouts.
        o.deadline = Duration::from_secs(600);
    });
    let expect = oracle(&db, 6);
    let addr = server.addr();

    const SOCKETS: usize = 256;
    const PIPELINE: u32 = 4;
    let mut conns = Vec::with_capacity(SOCKETS);
    for _ in 0..SOCKETS {
        let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(120))).expect("connect");
        let stmt = c.prepare("tpch:6").expect("prepare");
        conns.push((c, stmt));
    }

    // Peak: every socket is connected and prepared. The driver itself
    // spawned no threads, so any growth beyond the fixed anatomy is the
    // server scaling with connections — the regression this test exists
    // to catch.
    if let (Some(t0), Some(t1)) = (t_pre, proc_threads()) {
        // 1 acceptor + 2 io + 4 workers + 2 engine builders + slack.
        let limit = 1 + 2 + 4 + 2 + 16;
        assert!(
            t1 - t0 <= limit,
            "server grew {} threads for {SOCKETS} sockets (limit {limit})",
            t1 - t0
        );
    }
    if let (Some(f0), Some(f1)) = (fd_pre, proc_fds()) {
        // Two fds per socket are the driver's own (the client dups its
        // stream); one per accepted connection is the server's.
        let limit = 3 * SOCKETS as u64 + 64;
        assert!(
            f1 - f0 <= limit,
            "{} fds for {SOCKETS} sockets (limit {limit})",
            f1 - f0
        );
    }

    // Pipeline every request before reading any reply.
    for (c, stmt) in &mut conns {
        for seq in 100..100 + PIPELINE {
            c.send_raw(OP_EXECUTE, seq, &stmt.to_be_bytes())
                .expect("pipeline");
        }
    }
    for (ci, (c, _)) in conns.iter_mut().enumerate() {
        for _ in 0..PIPELINE {
            let f = c
                .recv_raw()
                .expect("read reply")
                .expect("every request answers");
            assert!(
                (100..100 + PIPELINE).contains(&f.seq),
                "conn {ci}: stray seq {}",
                f.seq
            );
            assert_eq!(f.opcode, OP_RESULT, "conn {ci}: not a result");
            let (_, _, rows) = protocol::decode_result(&f.payload).expect("result payload");
            assert!(same_normalized(&expect, &rows), "conn {ci}: rows diverge");
        }
    }
    drop(conns);
    let report = server.shutdown();
    assert_eq!(report.connections as usize, SOCKETS);
    assert_eq!(report.executed, (SOCKETS as u64) * PIPELINE as u64);
    assert_eq!(report.exec_errors, 0);
}

/// A result crossing the streaming threshold arrives as a
/// `RESULT_CHUNK*` + `RESULT_END` sequence that reassembles
/// byte-identically to the single-frame encoding a default server
/// sends — checked both through the client (which hides the seam) and
/// on the raw wire (≥2 chunks, `RESULT_END` length claim exact).
#[test]
fn chunked_results_are_byte_identical_to_single_frame() {
    let (db, data) = setup();
    let plain = start_server(&db, &data, |_| {});
    let chunky = start_server(&db, &data, |o| {
        o.stream_threshold = 64;
        o.stream_chunk = 48;
    });
    let expect = oracle(&db, 10);

    // Through the client API the seam is invisible: identical rows.
    let mut a = Client::connect(plain.addr()).expect("connect plain");
    let mut b = Client::connect(chunky.addr()).expect("connect chunky");
    let (sa, sb) = (a.prepare("tpch:10").unwrap(), b.prepare("tpch:10").unwrap());
    let (ra, rb) = (
        a.execute(sa).expect("plain"),
        b.execute(sb).expect("chunked"),
    );
    assert_eq!(ra.rows, rb.rows, "chunking changed the bytes");
    assert!(same_normalized(&expect, &rb.rows), "rows diverge");

    // On the raw wire: the stream grammar, literally.
    b.send_raw(OP_EXECUTE, 9, &sb.to_be_bytes()).expect("send");
    let (mut chunks, mut assembled) = (0u32, Vec::new());
    let claimed = loop {
        let f = b.recv_raw().expect("read").expect("reply");
        assert_eq!(f.seq, 9, "stream frames echo the request seq");
        match f.opcode {
            OP_RESULT_CHUNK => {
                assert!(f.payload.len() <= 48, "chunk exceeds stream_chunk");
                chunks += 1;
                assembled.extend_from_slice(&f.payload);
            }
            OP_RESULT_END => break protocol::decode_result_end(&f.payload).expect("u64be total"),
            other => panic!("opcode {other:#x} inside a result stream"),
        }
    };
    assert!(chunks >= 2, "payload this size must split (got {chunks})");
    assert_eq!(claimed, assembled.len() as u64, "END length claim");
    let (_, _, rows) = protocol::decode_result(&assembled).expect("reassembled payload");
    assert!(same_normalized(&expect, &rows), "raw reassembly diverges");

    a.close().unwrap();
    b.close().unwrap();
    plain.shutdown();
    let report = chunky.shutdown();
    assert!(report.chunked_results >= 2, "{report:?}");
}

/// A client that walks away mid-stream costs the server nothing: the
/// dead connection is reaped, the remaining chunks are dropped on the
/// floor, and the next client gets a complete stream.
#[test]
fn a_mid_stream_cancel_leaves_the_server_clean() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |o| {
        o.stream_threshold = 64;
        o.stream_chunk = 16; // ~170 chunks for Q10 — plenty left to cancel
    });
    let expect = oracle(&db, 10);
    let addr = server.addr();

    let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(60))).expect("connect");
    let stmt = c.prepare("tpch:10").expect("prepare");
    c.send_raw(OP_EXECUTE, 5, &stmt.to_be_bytes())
        .expect("send");
    let f = c.recv_raw().expect("read").expect("first frame");
    assert_eq!(f.opcode, OP_RESULT_CHUNK, "stream must have started");
    drop(c); // hang up with ~169 chunks undelivered

    // The corpse is reaped and a fresh client gets the whole stream.
    let mut c = Client::connect_timeout(addr, Some(Duration::from_secs(60))).expect("connect");
    let stmt = c.prepare("tpch:10").expect("prepare");
    let reply = c.execute(stmt).expect("full stream after a cancel");
    assert!(same_normalized(&expect, &reply.rows), "rows diverge");
    c.close().expect("close");

    let t0 = Instant::now();
    while server.open_connections() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "cancelled connection never reaped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

/// The portable `poll(2)` backend serves the same happy path — CI for
/// the code path non-Linux hosts would take.
#[test]
fn the_poll_backend_serves_the_happy_path() {
    let (db, data) = setup();
    let server = start_server(&db, &data, |o| o.force_poll = true);
    let expect = oracle(&db, 6);
    let mut c = Client::connect(server.addr()).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    let reply = c.execute(stmt).expect("execute");
    assert!(same_normalized(&expect, &reply.rows), "rows diverge");
    c.close().expect("close");
    let report = server.shutdown();
    assert_eq!(report.executed, 1);
}
