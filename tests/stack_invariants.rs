//! Cross-crate invariants of the DSL stack itself: level discipline,
//! monotone lowering, stage-by-stage interpretability, and the formal
//! stack-construction principles.

use dblab::ir::level::{validate, validate_window, Level};
use dblab::tpch;
use dblab::transform::config::dblab_stack;
use dblab::transform::stack::compile_with_snapshots;
use dblab::transform::{pass, StackConfig};

fn schema_with_stats() -> dblab::catalog::Schema {
    let mut s = tpch::tpch_schema();
    for t in &mut s.tables {
        t.stats.row_count = 500;
        t.stats.int_max = vec![500; t.columns.len()];
        t.stats.distinct = vec![25; t.columns.len()];
    }
    s
}

#[test]
fn declared_stack_satisfies_both_principles() {
    let chain = dblab_stack().check().expect("principled stack");
    // The unique lowering path runs MapList -> List -> ScaLite -> CScala.
    let levels: Vec<(Level, Level)> = chain.iter().map(|e| (e.source, e.target)).collect();
    assert_eq!(
        levels,
        vec![
            (Level::MapList, Level::List),
            (Level::List, Level::ScaLite),
            (Level::ScaLite, Level::CScala),
        ]
    );
}

#[test]
fn every_stage_of_the_full_stack_validates_at_its_level() {
    let schema = schema_with_stats();
    for n in [1, 3, 6, 13, 16] {
        let prog = tpch::queries::query(n);
        let (_, stages) = compile_with_snapshots(&prog, &schema, &StackConfig::level5(), true);
        assert!(stages.len() >= 5, "Q{n}: expected full stage chain");
        let mut last = Level::MapList;
        for (name, p) in &stages {
            // Levels never go back up (expressibility principle).
            assert!(p.level >= last, "Q{n}: {name} raised the level");
            last = p.level;
            // Dialect validation (pools make the final stages C.Scala;
            // mixed-down stages must be clean at their declared level).
            let violations = validate(p);
            assert!(violations.is_empty(), "Q{n} after {name}: {violations:?}");
        }
    }
}

#[test]
fn declared_stack_is_derived_from_the_pass_registry() {
    // The checked stack and the executable pipeline cannot drift: the
    // StackBuilder edges are the registry's own declarations.
    let edges = pass::declared_edges();
    assert!(edges
        .iter()
        .any(|(n, s, t)| *n == "hash-table-specialization"
            && *s == Level::MapList
            && *t == Level::List));
    assert!(edges
        .iter()
        .any(|(n, s, t)| *n == "memory-hoisting" && *s == Level::ScaLite && *t == Level::CScala));
    // And the derived stack still satisfies both §2 principles.
    dblab_stack().check().expect("principled stack");
}

#[test]
fn partial_stacks_validate_within_their_dialect_window() {
    // Level 4 disables list specialization: lists legitimately survive to
    // the C.Scala program, so the final stage validates in the window
    // [ScaLite[List], C.Scala] but not at C.Scala alone. Level 3 disables
    // both collection lowerings, widening the window to the whole stack.
    let schema = schema_with_stats();
    let prog = tpch::queries::query(3);
    for (cfg, ceiling) in [
        (StackConfig::level3(), Level::MapList),
        (StackConfig::level4(), Level::List),
    ] {
        let (cq, _) = compile_with_snapshots(&prog, &schema, &cfg, false);
        assert_eq!(cq.program.level, Level::CScala);
        let v = validate_window(&cq.program, ceiling, cq.program.level);
        assert!(v.is_empty(), "{}: {v:?}", cfg.name);
    }
    // The full stack collapses the window: exact dialect conformance.
    let (cq, _) = compile_with_snapshots(&prog, &schema, &StackConfig::level5(), false);
    assert!(validate(&cq.program).is_empty());
}

#[test]
fn stage_trace_is_instrumented_end_to_end() {
    let schema = schema_with_stats();
    let prog = tpch::queries::query(6);
    let (cq, programs) = compile_with_snapshots(&prog, &schema, &StackConfig::level5(), true);
    assert_eq!(cq.stages.len(), programs.len());
    for (snap, (name, p)) in cq.stages.iter().zip(&programs) {
        assert_eq!(&snap.name, name);
        assert_eq!(snap.level, p.level);
        assert_eq!(snap.size, p.body.size());
    }
    // The trace is contiguous: each stage starts where the last ended.
    for w in cq.stages.windows(2) {
        assert_eq!(w[1].level_before, w[0].level);
        assert_eq!(w[1].size_before, w[0].size);
    }
    assert!(cq.stage_time_total() <= cq.gen_time);
}

#[test]
fn deeper_stacks_never_produce_slower_shapes() {
    // Structural proxy for Table 3's "performance is never negatively
    // affected": deeper stacks must eliminate the generic containers.
    let schema = schema_with_stats();
    for n in [3, 4, 10] {
        let prog = tpch::queries::query(n);
        let l2 = dblab::transform::compile(&prog, &schema, &StackConfig::level2());
        let l5 = dblab::transform::compile(&prog, &schema, &StackConfig::level5());
        let has =
            |p: &dblab::ir::Program, pat: &str| dblab::ir::printer::print_program(p).contains(pat);
        assert!(
            has(&l2.program, "MultiMap") || has(&l2.program, "HashMap"),
            "Q{n}: L2 should use generic hash tables"
        );
        assert!(
            !has(&l5.program, "MultiMap") && !has(&l5.program, "HashMap"),
            "Q{n}: L5 must specialize every hash table away"
        );
        assert!(
            !has(&l5.program, "new List["),
            "Q{n}: L5 must specialize every list away"
        );
    }
}

#[test]
fn compliant_config_avoids_noncompliant_artifacts() {
    let schema = schema_with_stats();
    let prog = tpch::queries::query(14); // uses startsWith => dictionary bait
    let compliant = dblab::transform::compile(&prog, &schema, &StackConfig::compliant());
    let text = dblab::ir::printer::print_program(&compliant.program);
    assert!(!text.contains("dict["), "no dictionaries when compliant");
    assert!(
        !text.contains("loadIndex"),
        "no index inference when compliant"
    );
    let l5 = dblab::transform::compile(&prog, &schema, &StackConfig::level5());
    let text5 = dblab::ir::printer::print_program(&l5.program);
    assert!(text5.contains("dict["), "level 5 dictionary-encodes p_type");
}

#[test]
fn generated_c_is_self_contained_and_stable() {
    let schema = schema_with_stats();
    let prog = tpch::queries::query(6);
    let cq = dblab::transform::compile(&prog, &schema, &StackConfig::level5());
    let src1 = dblab::codegen::emit(&cq.program, &schema);
    let src2 = dblab::codegen::emit(&cq.program, &schema);
    assert_eq!(src1, src2, "emission is deterministic");
    assert!(src1.contains("#include \"dblab_runtime.h\""));
    assert!(src1.contains("load_lineitem"));
    assert!(src1.contains("dblab_timer_start"));
}
