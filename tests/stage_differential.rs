//! The per-stage differential suite (ROADMAP item, DESIGN.md §7): the
//! paper's "each DSL is executable" claim, mechanized. For every TPC-H
//! query compiled through the full five-level stack,
//! `compile_with_snapshots` retains the complete IR program after *every*
//! stage, and each snapshot — not just the final program — is executed by
//! `dblab-interp` and checked against the Volcano oracle.
//!
//! This is what localizes a miscompile to a single pass: if the
//! stage-`k` snapshot agrees with the oracle and the stage-`k+1` snapshot
//! does not, the bug is in exactly one transformation. It is also the
//! semantic backstop for the per-pass IR cache: a memoized stage output
//! is the same `Program` value a fresh run would produce, so it flows
//! through this suite like any other.

use std::path::PathBuf;

use dblab::codegen::same_normalized;
use dblab::engine;
use dblab::tpch;
use dblab::transform::stack::compile_with_snapshots;
use dblab::transform::StackConfig;

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_stage_diff_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

#[test]
fn every_stage_snapshot_matches_the_oracle_for_all_queries() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let cfg = StackConfig::level5();
    let mut failures = Vec::new();
    for n in 1..=22 {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let (cq, programs) = compile_with_snapshots(&prog, &schema, &cfg, true);
        assert_eq!(
            programs.len(),
            cq.stages.len(),
            "Q{n}: one retained program per recorded stage"
        );
        for (stage, p) in &programs {
            let got = dblab::interp::run(p, &db);
            if !same_normalized(&oracle, &got) {
                failures.push(format!(
                    "Q{n} diverges at stage `{stage}` (level {}):\noracle:\n{}\ngot:\n{}",
                    p.level,
                    oracle.lines().take(4).collect::<Vec<_>>().join("\n"),
                    got.lines().take(4).collect::<Vec<_>>().join("\n"),
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The same stage-by-stage walk on the partial (compliant) stack — the
/// configuration benches actually publish numbers for.
#[test]
fn compliant_stack_snapshots_match_the_oracle_on_the_showdown_queries() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let cfg = StackConfig::compliant();
    for n in [1, 3, 6, 14] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let (_, programs) = compile_with_snapshots(&prog, &schema, &cfg, true);
        for (stage, p) in &programs {
            let got = dblab::interp::run(p, &db);
            assert!(
                same_normalized(&oracle, &got),
                "Q{n} @ {} diverges at stage `{stage}`",
                cfg.name
            );
        }
    }
}
