//! Graceful-shutdown suite. The contract:
//!
//! * every request admitted before shutdown **completes with correct
//!   results** and its response reaches the client — drain, don't drop;
//! * requests arriving *during* the drain get a typed `shutting-down`
//!   frame, and new connections are refused outright (the listener is
//!   gone before the drain begins);
//! * shutdown is a clean exit: repeated start/shutdown cycles return the
//!   process to its exact pre-start thread count — nothing is detached,
//!   nothing leaks.
//!
//! Run with `--test-threads=1` (CI does): the thread-parity check counts
//! every thread in the process, so concurrently running tests would
//! add noise.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dblab::codegen::same_normalized;
use dblab::engine::service::{EngineOptions, NativeChoice};
use dblab::engine::{self};
use dblab::tpch;
use dblab_server::protocol::{self, OP_ERROR, OP_EXECUTE, OP_RESULT};
use dblab_server::{tpch_resolver, Client, ErrorCode, Server, ServerOptions};

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_server_sd_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

fn start_server(
    db: &dblab::runtime::Database,
    data: &std::path::Path,
    patch: impl FnOnce(&mut ServerOptions),
) -> Server {
    let mut opts = ServerOptions {
        engine: EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_server_sd_gen"),
            native: NativeChoice::Disabled,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    };
    patch(&mut opts);
    Server::start(&db.schema, data, tpch_resolver(), opts).expect("start server")
}

/// The process's live thread count (`/proc/self/status`, Linux).
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

#[test]
fn in_flight_requests_drain_to_correct_results_and_new_work_is_refused() {
    let (db, data) = setup();
    // One slow worker so a pipelined burst is still queued when shutdown
    // begins — those are the in-flight requests that must drain.
    let server = start_server(&db, &data, |o| {
        o.workers = 1;
        o.queue_cap = 16;
        o.debug_worker_delay = Duration::from_millis(300);
    });
    let addr = server.addr();
    let expect = engine::execute_program(&tpch::queries::query(6), &db).to_text();

    let mut c = Client::connect(addr).expect("connect");
    let stmt = c.prepare("tpch:6").expect("prepare");
    const IN_FLIGHT: u32 = 3;
    for seq in 1..=IN_FLIGHT {
        c.send_raw(OP_EXECUTE, seq, &stmt.to_be_bytes())
            .expect("send");
    }

    // Shut down while the burst is queued behind the slow worker.
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // (a) New connections are refused: the listener died before the
    // drain began. (Loopback connect to a dead port fails fast; a slow
    // failure mode still must not *serve*.)
    match Client::connect_timeout(addr, Some(Duration::from_secs(2))) {
        Err(_) => {} // refused at connect — the common Linux behavior
        Ok(mut late) => {
            assert!(
                late.prepare("tpch:6").is_err(),
                "a connection sneaking past shutdown must not be served"
            );
        }
    }

    // (b) A request on the *existing* session during the drain gets a
    // typed shutting-down frame, not silence.
    c.send_raw(OP_EXECUTE, 99, &stmt.to_be_bytes())
        .expect("send during drain");

    // (c) Every admitted request completes with correct rows; the late
    // one is refused. Collect all four responses.
    let (mut results, mut refused) = (0u32, 0u32);
    for _ in 0..IN_FLIGHT + 1 {
        let f = c.recv_raw().expect("read").expect("every request answers");
        match f.opcode {
            OP_RESULT => {
                assert!((1..=IN_FLIGHT).contains(&f.seq), "admitted seqs only");
                let (_, _, rows) = protocol::decode_result(&f.payload).expect("result");
                assert!(
                    same_normalized(&expect, &rows),
                    "drained result must be correct"
                );
                results += 1;
            }
            OP_ERROR => {
                assert_eq!(f.seq, 99, "only the late request is refused");
                let (code, _) = protocol::decode_error(&f.payload).expect("typed");
                assert_eq!(code, ErrorCode::ShuttingDown);
                refused += 1;
            }
            other => panic!("unexpected opcode {other:#x}"),
        }
    }
    assert_eq!((results, refused), (IN_FLIGHT, 1));

    let report = shutdown.join().expect("shutdown thread");
    assert_eq!(
        report.executed, IN_FLIGHT as u64,
        "all admitted requests drained"
    );
    assert_eq!(report.rejected, 1);
    assert!(
        report.drained_in_flight >= 1,
        "shutdown began with work in flight: {report:?}"
    );
}

#[test]
fn repeated_start_shutdown_cycles_leak_no_threads() {
    let (db, data) = setup();
    // Warm-up cycle: lazy one-time initialization (locale data, the
    // backend registry, procfs handles) must not count as a leak.
    {
        let server = start_server(&db, &data, |_| {});
        let mut c = Client::connect(server.addr()).expect("connect");
        let stmt = c.prepare("tpch:6").expect("prepare");
        c.execute(stmt).expect("execute");
        c.close().expect("close");
        server.shutdown();
    }

    let before = thread_count();
    for cycle in 0..3 {
        let server = start_server(&db, &data, |_| {});
        let mut c = Client::connect(server.addr()).expect("connect");
        let stmt = c.prepare("tpch:1").expect("prepare");
        let reply = c.execute(stmt).expect("execute");
        assert!(!reply.rows.is_empty(), "cycle {cycle} served rows");
        // Deliberately no close(): shutdown must sever and join the
        // reader even for a rude client.
        drop(c);
        let report = server.shutdown();
        assert_eq!(report.executed, 1, "cycle {cycle}");
    }
    // The severed client sockets unwind asynchronously on the client
    // side; the *server's* threads are joined synchronously, so the
    // count settles immediately. Poll briefly to absorb OS lag.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after == before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak across start/shutdown cycles: {before} before, {after} after"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // And a dropped-without-shutdown server cleans up the same way
    // (the `Drop` safety net runs the identical sequence).
    {
        let server = start_server(&db, &data, |_| {});
        let mut c = Client::connect(server.addr()).expect("connect");
        let stmt = c.prepare("tpch:6").expect("prepare");
        c.execute(stmt).expect("execute");
        drop(c);
        drop(server);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after == before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "thread leak after Drop-based shutdown: {before} before, {after} after"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
