//! Cache-transparency suite: memoization must be semantically invisible.
//!
//! * cold-vs-warm compiles produce **byte-identical emitted source** and
//!   identical stage traces (modulo wall times and the `cached` flag);
//! * the per-pass cache keys on exactly the inputs a pass reads — a pass
//!   whose relevant configuration bit flips must **miss** (under-keying
//!   guard), while a pass that reads no configuration must **hit** across
//!   configurations that only differ in bits it ignores (over-keying
//!   guard);
//! * the source-level build cache reuses artifacts for byte-identical
//!   source and reports the reuse on the compiled artifact.
//!
//! Every test builds its programs against a schema with test-unique
//! table names/statistics so its cache keys cannot collide with other
//! tests sharing the process-wide caches.

use dblab::catalog::{ColType, Schema, TableDef};
use dblab::codegen::{backend, build_cache, Compiler};
use dblab::frontend::expr::{col, lit_i};
use dblab::frontend::qplan::{AggFunc, QPlan, QueryProgram};
use dblab::transform::{memo, StackConfig};

/// A schema unique to one test: the table name seeds every LoadTable
/// node, so program hashes never collide across tests.
fn unique_schema(table: &str) -> Schema {
    let mut schema = Schema::new(vec![TableDef::new(
        table,
        vec![
            ("k", ColType::Int),
            ("v", ColType::Int),
            ("w", ColType::Double),
        ],
    )
    .with_primary_key(&["k"])]);
    let def = schema.table_mut(table);
    def.stats.row_count = 64;
    def.stats.int_max = vec![64; 3];
    def.stats.distinct = vec![16; 3];
    schema
}

fn agg_query(table: &str) -> QueryProgram {
    QueryProgram::new(QPlan::scan(table).select(col("v").gt(lit_i(3))).agg(
        vec![],
        vec![("n", AggFunc::Count), ("s", AggFunc::Sum(col("v")))],
    ))
}

#[test]
fn warm_compile_emits_byte_identical_source_and_trace() {
    let schema = unique_schema("ctwarm");
    let prog = agg_query("ctwarm");
    let cfg = StackConfig::level5();
    let gcc = backend("gcc").expect("registered");

    let cold = dblab::transform::compile(&prog, &schema, &cfg);
    let before = memo::stats();
    let warm = dblab::transform::compile(&prog, &schema, &cfg);
    let delta = memo::stats().since(&before);

    // Byte-identical emitted source (emit is pure — no toolchain needed).
    assert_eq!(
        gcc.emit(&cold.program, &schema),
        gcc.emit(&warm.program, &schema),
        "cold and warm compiles must emit byte-identical source"
    );
    // Identical traces modulo timings and hit flags.
    assert_eq!(cold.stages.len(), warm.stages.len());
    for (c, w) in cold.stages.iter().zip(&warm.stages) {
        assert_eq!(c.name, w.name);
        assert_eq!(c.kind, w.kind);
        assert_eq!(c.level_before, w.level_before);
        assert_eq!(c.level, w.level);
        assert_eq!(c.size_before, w.size_before);
        assert_eq!(c.size, w.size);
    }
    // Every registry pass (all but the front-end stage) was served from
    // the cache, and the process-wide counters saw those hits.
    assert_eq!(warm.cache_hits(), warm.stages.len() - 1);
    assert!(!warm.stages[0].cached, "front-end lowering is not memoized");
    assert!(
        delta.hits >= (warm.stages.len() - 1) as u64,
        "expected >= {} new hits, got {delta:?}",
        warm.stages.len() - 1
    );
    // The report surfaces the hits (satellite contract: observable, not
    // silent).
    assert!(warm.stage_report().contains("[cached]"));
    assert!(warm.stage_report().contains("stage-cache hit"));
    assert!(!cold.stage_report().contains("[cached]"));
}

#[test]
fn cfg_sensitive_pass_misses_and_insensitive_pass_hits_on_relevant_flip() {
    let schema = unique_schema("ctflip");
    let prog = agg_query("ctflip");
    // Two configurations differing ONLY in table_field_removal — the one
    // bit field-removal's rewrite reads.
    let with_removal = StackConfig::level3();
    assert!(with_removal.table_field_removal);
    let without_removal = StackConfig {
        table_field_removal: false,
        ..StackConfig::level3()
    };

    let first = dblab::transform::compile(&prog, &schema, &with_removal);
    let second = dblab::transform::compile(&prog, &schema, &without_removal);

    // Over-keying guard: a pass that reads no configuration must be
    // served from the first compile's entries despite the flag diff.
    let hf = second.stage("horizontal-fusion").expect("stage");
    assert!(
        hf.cached,
        "horizontal-fusion keys on no cfg bits and must hit across the flip"
    );
    // Under-keying guard: the pass that reads the flipped bit must miss.
    let fr = second.stage("field-removal").expect("stage");
    assert!(
        !fr.cached,
        "field-removal keys on table_field_removal and must miss when it flips"
    );
    // And the flip is not a no-op: base-table pruning changes the program.
    assert_ne!(
        dblab::ir::hash::program_hash(&first.program),
        dblab::ir::hash::program_hash(&second.program),
        "table_field_removal must change the lowered program"
    );

    // Idempotence: recompiling the second configuration is now all hits.
    let third = dblab::transform::compile(&prog, &schema, &without_removal);
    assert!(third.stage("field-removal").expect("stage").cached);
    assert_eq!(third.cache_hits(), third.stages.len() - 1);
}

#[test]
fn schema_statistics_are_part_of_the_key() {
    let schema = unique_schema("ctstats");
    let prog = agg_query("ctstats");
    let cfg = StackConfig::level5();
    let _ = dblab::transform::compile(&prog, &schema, &cfg);
    // Same program, same config, different cardinality statistics: pool
    // sizing and specialization decisions read them, so nothing may hit
    // once the pipeline's programs diverge — and the very first pass must
    // not blindly reuse the other schema's entry.
    let mut bigger = schema.clone();
    bigger.table_mut("ctstats").stats.row_count = 4096;
    bigger.table_mut("ctstats").stats.int_max = vec![4096; 3];
    let recompiled = dblab::transform::compile(&prog, &bigger, &cfg);
    assert_eq!(
        recompiled.cache_hits(),
        0,
        "a statistics change must invalidate every stage"
    );
}

#[test]
fn build_cache_reuses_artifacts_for_identical_source() {
    let gcc = backend("gcc").expect("registered");
    if !gcc.available() {
        eprintln!("(skipping: gcc not present)");
        return;
    }
    let schema = unique_schema("ctbuild");
    let prog = agg_query("ctbuild");
    let out = std::env::temp_dir().join("dblab_ct_gen");
    let compiler = Compiler::new(&schema)
        .config(&StackConfig::level5())
        .out_dir(&out);

    let before = build_cache::stats();
    let cold = compiler.compile_named(&prog, "ct_build_a").expect("gcc");
    assert!(!cold.build_cached, "first build of unique source is cold");
    assert!(cold.exe.build_time() > std::time::Duration::ZERO);

    // Different artifact name, identical source — the toolchain must not
    // run again.
    let warm = compiler.compile_named(&prog, "ct_build_b").expect("gcc");
    assert!(
        warm.build_cached,
        "identical source must reuse the artifact"
    );
    assert_eq!(warm.exe.build_time(), std::time::Duration::ZERO);
    assert_eq!(cold.source, warm.source, "emit stays pure");
    assert_eq!(
        warm.exe.artifact().expect("cached path"),
        cold.exe.artifact().expect("built path"),
        "the hit hands back the originally built binary"
    );
    let delta = build_cache::stats().since(&before);
    assert!(delta.hits >= 1, "counter must record the reuse: {delta:?}");
    assert!(delta.misses >= 1);

    // Transparency of the reuse: both executables produce the same rows.
    let mut t = dblab::runtime::Table::empty(schema.table("ctbuild"));
    for i in 0..10 {
        t.push_row(vec![
            dblab::runtime::Value::Int(i),
            dblab::runtime::Value::Int(i % 7),
            dblab::runtime::Value::Double(i as f64),
        ]);
    }
    let dir = std::env::temp_dir().join("dblab_ct_data");
    let db = dblab::runtime::Database {
        schema: schema.clone(),
        tables: vec![t],
        dir: dir.clone(),
    };
    db.write_all().expect("write .tbl");
    let a = cold.run(&dir).expect("cold run");
    let b = warm.run(&dir).expect("warm run");
    assert_eq!(a.stdout, b.stdout);
}

#[test]
fn stale_cached_artifact_falls_back_to_a_rebuild() {
    let gcc = backend("gcc").expect("registered");
    if !gcc.available() {
        eprintln!("(skipping: gcc not present)");
        return;
    }
    let schema = unique_schema("ctstale");
    let prog = agg_query("ctstale");
    let out = std::env::temp_dir().join("dblab_ct_stale_gen");
    let compiler = Compiler::new(&schema)
        .config(&StackConfig::level5())
        .out_dir(&out);
    let cold = compiler.compile_named(&prog, "ct_stale").expect("gcc");
    assert!(!cold.build_cached);
    // Simulate an outside temp-dir cleanup: the cache entry survives but
    // the binary is gone. The next compile must neither hang (the
    // stale-entry path re-locks the cache) nor fail — it rebuilds.
    std::fs::remove_file(cold.exe.artifact().expect("binary")).expect("delete artifact");
    let rebuilt = compiler.compile_named(&prog, "ct_stale").expect("rebuild");
    assert!(!rebuilt.build_cached, "stale entry must not count as a hit");
    assert!(rebuilt.exe.artifact().expect("rebuilt binary").exists());
    // And the rebuilt artifact is cached again.
    let warm = compiler.compile_named(&prog, "ct_stale2").expect("gcc");
    assert!(warm.build_cached);
}

#[test]
fn interp_backend_stays_outside_the_build_cache() {
    let interp = backend("interp").expect("registered");
    assert!(!interp.cacheable());
    let schema = unique_schema("ctinterp");
    let prog = agg_query("ctinterp");
    let compiler = Compiler::new(&schema)
        .config(&StackConfig::level2())
        .backend(backend("interp").expect("registered"));
    let a = compiler.compile_named(&prog, "ct_i1").expect("interp");
    let b = compiler.compile_named(&prog, "ct_i2").expect("interp");
    assert!(!a.build_cached && !b.build_cached);
}
