//! The schedule-differential suite: the pass-commutation DAG's claim —
//! *any* topological order of the declared dependency DAG compiles every
//! query correctly — tested end to end.
//!
//! ≥25 distinct valid orderings of the level-5 stack are sampled (seeded,
//! so the suite is deterministic), every ordering compiles all 22 TPC-H
//! queries through the contract-checked driver (which still validates the
//! dialect window after every pass in test builds), and each final
//! program is executed by `dblab-interp` against the Volcano oracle.
//!
//! When an ordering diverges, the failure is **shrunk** before being
//! reported: any ordering differs from the baseline by a set of inverted
//! commuting pairs, so the shrinker re-tests the query with each inverted
//! pair swapped adjacently on its own, and names the minimal offending
//! pair — turning "schedule #17 of Q9 is wrong" into "`field-removal`
//! before `list-specialization` miscompiles Q9".

use std::path::PathBuf;

use dblab::codegen::same_normalized;
use dblab::engine;
use dblab::tpch;
use dblab::transform::schedule::Scheduler;
use dblab::transform::stack::{compile_ordered, compile_scheduled};
use dblab::transform::StackConfig;

const SEED: u64 = 0xdb1a_b5ce_d001;
const ORDERINGS: usize = 25;

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_sched_diff_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

/// Baseline plus distinct sampled permutations, ≥ `ORDERINGS` total.
fn orderings(sched: &Scheduler) -> Vec<Vec<&'static str>> {
    let mut orders = vec![sched.baseline()];
    for o in sched.sample_orders(SEED, ORDERINGS * 2) {
        if !orders.contains(&o) {
            orders.push(o);
        }
        if orders.len() == ORDERINGS {
            break;
        }
    }
    orders
}

/// Shrink a failing (query, ordering) to a minimal offending pass pair:
/// for every pair the ordering inverts relative to the baseline, re-test
/// with just that pair swapped adjacently. Returns the report.
fn shrink(
    n: usize,
    order: &[&'static str],
    sched: &Scheduler,
    schema: &dblab::catalog::Schema,
    db: &dblab::runtime::Database,
    oracle: &str,
) -> String {
    let baseline = sched.baseline();
    let pos = |seq: &[&str], x: &str| seq.iter().position(|n| *n == x).unwrap();
    let prog = tpch::queries::query(n);
    for i in 0..baseline.len() {
        for j in i + 1..baseline.len() {
            let (a, b) = (baseline[i], baseline[j]);
            if pos(order, a) < pos(order, b) {
                continue; // not inverted in the failing ordering
            }
            // The pair is inverted; a valid ordering inverting *only* this
            // pair exists exactly when the DAG leaves it unordered.
            let Ok(swapped) = sched.adjacent_order(b, a) else {
                continue;
            };
            let cq = match compile_scheduled(sched, &prog, schema, &swapped, false) {
                Ok((cq, _)) => cq,
                Err(e) => {
                    return format!("Q{n}: pair `{b}` before `{a}` does not even compile: {e}")
                }
            };
            if !same_normalized(oracle, &dblab::interp::run(&cq.program, db)) {
                return format!(
                    "Q{n}: minimal offending pair — running `{b}` before `{a}` \
                     diverges from the oracle (full failing schedule: {order:?})"
                );
            }
        }
    }
    format!(
        "Q{n}: schedule {order:?} diverges from the oracle but no single \
         adjacent pair swap reproduces it (interaction of 3+ passes?)"
    )
}

#[test]
fn sampled_schedules_agree_with_the_oracle_on_all_queries() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let cfg = StackConfig::level5();
    let sched = Scheduler::from_registry(&cfg).expect("level-5 DAG builds");
    let orders = orderings(&sched);
    assert!(
        orders.len() >= ORDERINGS,
        "need >= {ORDERINGS} distinct schedules, got {}",
        orders.len()
    );
    assert_eq!(orders, orderings(&sched), "sampling is deterministic");
    for o in &orders {
        sched.validate_order(o).expect("sampled schedule valid");
    }

    let mut failures = Vec::new();
    for n in 1..=22 {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        // Distinct final programs already executed for this query:
        // identical IR implies identical interpreter output, so each
        // distinct program runs exactly once — an ordering producing
        // *novel* IR is always executed directly.
        let mut verified: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for order in &orders {
            let cq = match compile_scheduled(&sched, &prog, &schema, order, false) {
                Ok((cq, _)) => cq,
                Err(e) => {
                    failures.push(format!("Q{n}: schedule {order:?} rejected: {e}"));
                    continue;
                }
            };
            // The stage trace must follow the requested schedule (stage 0
            // is the front-end lowering).
            let trace: Vec<&str> = cq.stages[1..].iter().map(|s| s.name.as_str()).collect();
            assert_eq!(&trace, order, "Q{n}: trace order");
            let hash = dblab::ir::hash::program_hash(&cq.program);
            let agree = *verified
                .entry(hash)
                .or_insert_with(|| same_normalized(&oracle, &dblab::interp::run(&cq.program, &db)));
            if !agree {
                failures.push(shrink(n, order, &sched, &schema, &db, &oracle));
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// The same walk on the TPC-H-compliant stack (the configuration the
/// benches publish numbers for) over the showdown queries — the DAG and
/// its declared edges must hold for partial stacks too.
#[test]
fn compliant_stack_schedules_agree_on_the_showdown_queries() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let cfg = StackConfig::compliant();
    let sched = Scheduler::from_registry(&cfg).expect("compliant DAG builds");
    let orders = orderings(&sched);
    assert!(
        orders.len() >= ORDERINGS,
        "compliant DAG admits {ORDERINGS}+"
    );
    for n in [1, 3, 6, 14] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let mut verified: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for order in &orders {
            let (cq, _) = compile_scheduled(&sched, &prog, &schema, order, false)
                .unwrap_or_else(|e| panic!("Q{n} @ {order:?}: {e}"));
            let hash = dblab::ir::hash::program_hash(&cq.program);
            let agree = *verified
                .entry(hash)
                .or_insert_with(|| same_normalized(&oracle, &dblab::interp::run(&cq.program, &db)));
            assert!(
                agree,
                "Q{n} @ {} diverges under schedule {order:?}",
                cfg.name
            );
        }
    }
}

/// `threads > 1` adds `parallelize-scans` to the DAG with no change to
/// any call site — the scheduler picks it up from the registry, its
/// declared edges constrain every sampled ordering, and each schedule
/// still agrees with the oracle (the interpreter executes `ParallelFor`
/// as one logical worker).
#[test]
fn threaded_schedules_pick_up_parallelize_scans_and_agree() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let mut cfg = StackConfig::level5();
    cfg.threads = 4;
    let sched = Scheduler::from_registry(&cfg).expect("threaded DAG builds");
    assert!(
        sched.baseline().contains(&"parallelize-scans"),
        "threads = 4 must select the pass: {:?}",
        sched.baseline()
    );
    let orders = orderings(&sched);
    assert!(orders.len() >= ORDERINGS);
    // Every sampled ordering keeps the pass after all of its declared
    // prerequisites (validate_order enforces the DAG).
    for o in &orders {
        sched.validate_order(o).expect("sampled schedule valid");
    }
    // Q1 (hash-table build), Q6 (scalar reductions), Q17 (multimap
    // chain concatenation): one query per privatization shape.
    for n in [1, 6, 17] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let mut verified: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for order in &orders {
            let (cq, _) = compile_scheduled(&sched, &prog, &schema, order, false)
                .unwrap_or_else(|e| panic!("Q{n} @ {order:?}: {e}"));
            let hash = dblab::ir::hash::program_hash(&cq.program);
            let agree = *verified
                .entry(hash)
                .or_insert_with(|| same_normalized(&oracle, &dblab::interp::run(&cq.program, &db)));
            assert!(agree, "Q{n} diverges under threaded schedule {order:?}");
        }
    }
}

/// `parallelize-scans`' declared edges are real dependencies, not
/// decoration: an ordering that runs it before one of its prerequisites
/// must be rejected by the driver, naming the violated edge.
#[test]
fn parallelize_scans_declared_edges_are_enforced() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let mut cfg = StackConfig::level5();
    cfg.threads = 4;
    let sched = Scheduler::from_registry(&cfg).expect("threaded DAG builds");
    // Move parallelize-scans before branch-optimization — both float at
    // C.Scala, so the swap is level-wise legal and only the declared
    // edge forbids it (swapped, the `&`-chains the privatization
    // analysis walks are still `&&` trees).
    let mut order = sched.baseline();
    let ips = order
        .iter()
        .position(|n| *n == "parallelize-scans")
        .unwrap();
    order.remove(ips);
    let ibo = order
        .iter()
        .position(|n| *n == "branch-optimization")
        .unwrap();
    order.insert(ibo, "parallelize-scans");
    let prog = tpch::queries::query(1);
    let err = compile_ordered(&prog, &schema, &cfg, &order).unwrap_err();
    assert!(
        err.contains("declared edge branch-optimization -> parallelize-scans"),
        "declared-edge violation must be named: {err}"
    );
    // And before field-removal (swapped, the privatization analysis
    // would key on record layouts field-removal is about to change).
    let mut order = sched.baseline();
    let ips = order
        .iter()
        .position(|n| *n == "parallelize-scans")
        .unwrap();
    order.remove(ips);
    let ifr = order.iter().position(|n| *n == "field-removal").unwrap();
    order.insert(ifr, "parallelize-scans");
    let err = compile_ordered(&prog, &schema, &cfg, &order).unwrap_err();
    assert!(
        err.contains("parallelize-scans"),
        "declared-edge violation must name the pass: {err}"
    );
    drop(db);
}

/// The shrinker itself is exercised against a known-bad schedule: orders
/// that violate the DAG must be rejected up front by the driver, so a
/// "failing ordering" can only ever be a valid-but-miscompiling one —
/// simulate one by checking the rejection path.
#[test]
fn dag_violating_schedules_are_rejected_not_executed() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    let cfg = StackConfig::level5();
    let sched = Scheduler::from_registry(&cfg).expect("dag");
    // field-removal before string-dictionaries: level-wise legal (the
    // pass floats), but it violates the *declared* edge the calibration
    // sweep demanded — swapped, string-dictionaries indexes struct
    // layouts field-removal already pruned. The driver must refuse to
    // run it rather than crash or miscompile.
    let mut order = sched.baseline();
    let ifr = order.iter().position(|n| *n == "field-removal").unwrap();
    order.remove(ifr);
    let isd = order
        .iter()
        .position(|n| *n == "string-dictionaries")
        .unwrap();
    order.insert(isd, "field-removal");
    let prog = tpch::queries::query(1);
    let err = compile_ordered(&prog, &schema, &cfg, &order).unwrap_err();
    assert!(
        err.contains("declared edge string-dictionaries -> field-removal"),
        "declared-edge violation must be named: {err}"
    );
    drop(db);
}
