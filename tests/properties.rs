//! Randomized property tests over the core invariants (no external
//! framework: a seeded [`Rng64`] drives hand-rolled generators, so the
//! suite is deterministic and dependency-free):
//!
//! * scalar-expression lowering + ANF construction (CSE, constant folding)
//!   preserve evaluation semantics — random expression trees are evaluated
//!   by the Volcano evaluator and by the IR interpreter over the lowered
//!   program, and must agree;
//! * the generic hash structures behave like `std::collections::HashMap`;
//! * ordered string dictionaries preserve `<`, equality and `startsWith`;
//! * the Volcano hash join equals a naïve nested-loop join;
//! * the structural IR hasher (the pass-cache key) is printer-faithful:
//!   printer-equal programs hash equal, any single-node mutation changes
//!   the hash, and two process-independent constructions of the same
//!   query plan agree;
//! * the pass-commutation DAG is sound: every pair of passes it leaves
//!   unordered yields `program_hash`-equal IR when swapped adjacently on
//!   all 22 TPC-H queries, and a deliberately mis-declared pair is
//!   caught by the soundness check.

use std::collections::HashMap;

use dblab::catalog::{ColType, Schema, TableDef};
use dblab::frontend::expr::{Lit, ScalarExpr};
use dblab::runtime::hash::{ChainedMap, ChainedMultiMap, OpenMap};
use dblab::runtime::{Database, StringDict, Table, Value};
use dblab::tpch::rng::Rng64;

const CASES: usize = 128;

// ---------------------------------------------------------------------
// Random scalar expressions
// ---------------------------------------------------------------------

fn arb_expr(rng: &mut Rng64, depth: usize) -> ScalarExpr {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        match rng.gen_range(0..5u8) {
            0 => ScalarExpr::Lit(Lit::Int(rng.gen_range(-50..50i32))),
            1 => ScalarExpr::Lit(Lit::Double(rng.gen_range(-50..50i32) as f64 / 4.0)),
            2 => ScalarExpr::Col("a".into()),
            3 => ScalarExpr::Col("b".into()),
            _ => ScalarExpr::Col("d".into()),
        }
    } else {
        let x = arb_expr(rng, depth - 1);
        match rng.gen_range(0..5u8) {
            0 => x.add(arb_expr(rng, depth - 1)),
            1 => x.sub(arb_expr(rng, depth - 1)),
            2 => x.mul(arb_expr(rng, depth - 1)),
            3 => ScalarExpr::case_when(
                // comparisons wrapped back into arithmetic via CASE
                x.lt(arb_expr(rng, depth - 1)),
                ScalarExpr::Lit(Lit::Int(1)),
                ScalarExpr::Lit(Lit::Int(0)),
            ),
            _ => x.neg(),
        }
    }
}

fn tiny_db(a: i32, b: i32, d: f64) -> Database {
    let schema = Schema::new(vec![TableDef::new(
        "t",
        vec![
            ("a", ColType::Int),
            ("b", ColType::Int),
            ("d", ColType::Double),
        ],
    )]);
    let mut t = Table::empty(schema.table("t"));
    t.push_row(vec![Value::Int(a), Value::Int(b), Value::Double(d)]);
    Database {
        schema,
        tables: vec![t],
        dir: std::env::temp_dir(),
    }
}

/// Lowered-and-interpreted == directly evaluated, for arbitrary
/// arithmetic over a one-row table. Exercises the builder's constant
/// folding and hash-consing on every tree.
#[test]
fn scalar_lowering_preserves_semantics() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab001);
    for _ in 0..CASES {
        let e = arb_expr(&mut rng, 4);
        let a = rng.gen_range(-20..20i32);
        let b = rng.gen_range(-20..20i32);
        let d = rng.gen_range(-8..8i32) as f64 / 2.0;
        let db = tiny_db(a, b, d);
        // Reference: Volcano expression evaluator.
        let plan = dblab::frontend::qplan::QPlan::scan("t").project(vec![("out", e.clone())]);
        let oracle = dblab::engine::execute_plan(&plan, &db);
        let want = oracle.rows[0][0].as_f64();

        // Lowered through the pipeline (level-2 config) and interpreted.
        let prog = dblab::frontend::qplan::QueryProgram::new(plan.clone());
        let mut schema = db.schema.clone();
        schema.table_mut("t").stats.row_count = 1;
        let p = dblab::transform::pipeline::lower_program(
            &prog,
            &schema,
            &dblab::transform::StackConfig::level2(),
        );
        let out = dblab::interp::run(&p, &db);
        let got: f64 = out.trim().parse().expect("one numeric cell");
        assert!(
            (got - want).abs() <= 1e-4_f64.max(want.abs() * 1e-9),
            "got {got}, want {want}, expr {e:?}"
        );
    }
}

/// The ANF builder never changes results when CSE/folding are toggled.
#[test]
fn cse_and_folding_are_semantics_preserving() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab002);
    for _ in 0..CASES {
        let e = arb_expr(&mut rng, 4);
        let db = tiny_db(3, -7, 1.5);
        let plan = dblab::frontend::qplan::QPlan::scan("t").project(vec![("out", e)]);
        let prog = dblab::frontend::qplan::QueryProgram::new(plan);
        let mut schema = db.schema.clone();
        schema.table_mut("t").stats.row_count = 1;
        let cfg = dblab::transform::StackConfig::level2();
        let p1 = dblab::transform::pipeline::lower_program(&prog, &schema, &cfg);
        let p2 = dblab::ir::opt::optimize(&p1, 8);
        assert_eq!(dblab::interp::run(&p1, &db), dblab::interp::run(&p2, &db));
        assert!(
            p2.body.size() <= p1.body.size(),
            "optimize must not grow programs"
        );
    }
}

// -------------------------------------------------------------------
// Hash structures vs std
// -------------------------------------------------------------------

#[test]
fn chained_map_behaves_like_std() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab003);
    for _ in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let mut ours: ChainedMap<i64, i64> = ChainedMap::with_buckets(2);
        let mut std_map: HashMap<i64, i64> = HashMap::new();
        for _ in 0..n {
            let k = rng.gen_range(0..64i64);
            let v = rng.gen_range(-100..100i64);
            assert_eq!(ours.insert(k, v), std_map.insert(k, v));
        }
        for k in 0..64 {
            assert_eq!(ours.get(&k), std_map.get(&k));
        }
        assert_eq!(ours.len(), std_map.len());
    }
}

#[test]
fn open_map_behaves_like_std() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab004);
    for _ in 0..CASES {
        let n = rng.gen_range(1..200usize);
        let mut ours: OpenMap<i64, i64> = OpenMap::with_capacity(512);
        let mut std_map: HashMap<i64, i64> = HashMap::new();
        for _ in 0..n {
            let k = rng.gen_range(0..512i64);
            *ours.get_or_insert_with(k, || 0) += 1;
            *std_map.entry(k).or_insert(0) += 1;
        }
        for k in 0..512 {
            assert_eq!(ours.get(&k), std_map.get(&k));
        }
    }
}

#[test]
fn multimap_preserves_insertion_order_per_key() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab005);
    for _ in 0..CASES {
        let n = rng.gen_range(0..100usize);
        let mut ours: ChainedMultiMap<i32, i32> = ChainedMultiMap::new();
        let mut reference: HashMap<i32, Vec<i32>> = HashMap::new();
        for _ in 0..n {
            let k = rng.gen_range(0..16i32);
            let v = rng.gen_range(0..1000i32);
            ours.add_binding(k, v);
            reference.entry(k).or_default().push(v);
        }
        for k in 0..16 {
            let want = reference.get(&k).cloned().unwrap_or_default();
            assert_eq!(ours.get(&k), &want[..]);
        }
    }
}

// -------------------------------------------------------------------
// String dictionaries (paper Table 2 semantics)
// -------------------------------------------------------------------

fn abc_string(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..3u8)) as char)
        .collect()
}

#[test]
fn ordered_dictionary_is_order_preserving() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab006);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40usize);
        let mut words: Vec<String> = (0..n).map(|_| abc_string(&mut rng, 5)).collect();
        let probe = abc_string(&mut rng, 3);
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let d = StringDict::build(refs.iter().copied(), true);
        // order preservation
        words.sort();
        words.dedup();
        for w in words.windows(2) {
            assert!(d.code(&w[0]) < d.code(&w[1]));
        }
        // startsWith == range membership, for every stored word
        let (s, e) = d.prefix_range(&probe);
        for w in &words {
            let c = d.code(w);
            assert_eq!(
                w.starts_with(&probe),
                c >= s && c <= e,
                "word {w} probe {probe}"
            );
        }
    }
}

// -------------------------------------------------------------------
// Structural IR hashing (the pass-cache key)
// -------------------------------------------------------------------

/// Lower an arbitrary expression program through the level-2 stack —
/// everything fresh per call, so two calls share no allocation.
fn lower_fresh(e: &ScalarExpr, cfg: &dblab::transform::StackConfig) -> dblab::ir::Program {
    let db = tiny_db(3, -7, 1.5);
    let plan = dblab::frontend::qplan::QPlan::scan("t").project(vec![("out", e.clone())]);
    let prog = dblab::frontend::qplan::QueryProgram::new(plan);
    let mut schema = db.schema.clone();
    schema.table_mut("t").stats.row_count = 1;
    dblab::transform::compile(&prog, &schema, cfg).program
}

/// Printer-equal programs hash equal, and independent constructions of
/// the same plan are printer-equal — over random expression trees.
#[test]
fn printer_equal_programs_hash_equal() {
    use dblab::ir::hash::program_hash;
    use dblab::ir::printer::print_program;
    let mut rng = Rng64::seed_from_u64(0xdb1ab008);
    let cfg = dblab::transform::StackConfig::level2();
    for _ in 0..CASES {
        let e = arb_expr(&mut rng, 4);
        let p1 = lower_fresh(&e, &cfg);
        let p2 = lower_fresh(&e, &cfg);
        assert_eq!(
            print_program(&p1),
            print_program(&p2),
            "lowering is deterministic"
        );
        assert_eq!(
            program_hash(&p1),
            program_hash(&p2),
            "printer-equal programs must hash equal: {e:?}"
        );
    }
}

/// Any single-node mutation — operator, literal, struct field name —
/// changes the hash.
#[test]
fn single_node_mutations_change_the_hash() {
    use dblab::ir::expr::{Atom, BinOp, Expr};
    use dblab::ir::hash::program_hash;

    let schema = {
        let mut s = dblab::tpch::tpch_schema();
        for t in &mut s.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        s
    };
    let prog = dblab::tpch::queries::q6();
    let p =
        dblab::transform::compile(&prog, &schema, &dblab::transform::StackConfig::level5()).program;
    let base = program_hash(&p);

    // (a) flip one binary operator
    let mut op_flipped = p.clone();
    let mut flipped = false;
    fn flip_first_bin(b: &mut dblab::ir::Block, done: &mut bool) {
        for st in &mut b.stmts {
            if *done {
                return;
            }
            if let Expr::Bin(op, _, _) = &mut st.expr {
                *op = if *op == BinOp::Add {
                    BinOp::Sub
                } else {
                    BinOp::Add
                };
                *done = true;
                return;
            }
            match &mut st.expr {
                Expr::If { then_b, else_b, .. } => {
                    flip_first_bin(then_b, done);
                    flip_first_bin(else_b, done);
                }
                Expr::ForRange { body, .. }
                | Expr::While { body, .. }
                | Expr::ListForeach { body, .. }
                | Expr::HashMapForeach { body, .. }
                | Expr::MultiMapForeachAt { body, .. } => flip_first_bin(body, done),
                _ => {}
            }
        }
    }
    flip_first_bin(&mut op_flipped.body, &mut flipped);
    assert!(flipped, "q6 contains a binary operator");
    assert_ne!(base, program_hash(&op_flipped), "operator flip must rehash");

    // (b) nudge one literal
    let mut lit_nudged = p.clone();
    let mut nudged = false;
    fn nudge_first_int(b: &mut dblab::ir::Block, done: &mut bool) {
        for st in &mut b.stmts {
            if *done {
                return;
            }
            if let Expr::Bin(_, a, b) = &mut st.expr {
                for atom in [a, b] {
                    if let Atom::Int(v) = atom {
                        *v += 1;
                        *done = true;
                        return;
                    }
                }
            }
            if let Expr::ForRange { lo, hi, .. } = &mut st.expr {
                for atom in [lo, hi] {
                    if let Atom::Int(v) = atom {
                        *v += 1;
                        *done = true;
                        return;
                    }
                }
            }
            for blk in match &mut st.expr {
                Expr::If { then_b, else_b, .. } => vec![then_b, else_b],
                Expr::While { cond, body } => vec![cond, body],
                Expr::ForRange { body, .. }
                | Expr::ListForeach { body, .. }
                | Expr::HashMapForeach { body, .. }
                | Expr::MultiMapForeachAt { body, .. } => vec![body],
                _ => vec![],
            } {
                nudge_first_int(blk, done);
            }
        }
    }
    nudge_first_int(&mut lit_nudged.body, &mut nudged);
    assert!(nudged, "q6 contains an integer literal operand");
    assert_ne!(base, program_hash(&lit_nudged), "literal nudge must rehash");

    // (c) rename one struct field
    let mut field_renamed = p.clone();
    let sid = field_renamed
        .structs
        .iter()
        .map(|(id, _)| id)
        .next()
        .expect("q6 registers at least one struct");
    field_renamed.structs.get_mut(sid).fields[0].name = "mutated_field_name".into();
    assert_ne!(
        base,
        program_hash(&field_renamed),
        "field rename must rehash"
    );
}

/// The hash is stable across two process-independent constructions of
/// the same query plan: nothing address- or iteration-order-dependent
/// leaks into the fingerprint (annotations live in a HashMap, whose raw
/// iteration order differs between the two compiles).
#[test]
fn hash_is_stable_across_independent_constructions() {
    use dblab::ir::hash::program_hash;
    let build = || {
        let mut schema = dblab::tpch::tpch_schema();
        for t in &mut schema.tables {
            t.stats.row_count = 100;
            t.stats.int_max = vec![100; t.columns.len()];
            t.stats.distinct = vec![10; t.columns.len()];
        }
        let prog = dblab::tpch::queries::query(3);
        dblab::transform::compile(&prog, &schema, &dblab::transform::StackConfig::level5()).program
    };
    assert_eq!(program_hash(&build()), program_hash(&build()));
}

// -------------------------------------------------------------------
// Pass-commutation DAG soundness
// -------------------------------------------------------------------

fn tpch_schema_with_stats() -> Schema {
    let mut s = dblab::tpch::tpch_schema();
    for t in &mut s.tables {
        t.stats.row_count = 100;
        t.stats.int_max = vec![100; t.columns.len()];
        t.stats.distinct = vec![10; t.columns.len()];
    }
    s
}

/// Every pair of passes the DAG declares commuting (leaves unordered)
/// yields `program_hash`-equal IR when swapped adjacently — over all 22
/// TPC-H queries, at the full stack and the partial stacks the benches
/// publish numbers for.
#[test]
fn declared_commuting_pairs_hash_equal_when_swapped() {
    use dblab::transform::{schedule::Scheduler, StackConfig};
    let schema = tpch_schema_with_stats();
    let corpus: Vec<(String, dblab::frontend::qplan::QueryProgram)> = (1..=22)
        .map(|n| (format!("Q{n}"), dblab::tpch::queries::query(n)))
        .collect();
    // The threaded five-level stack adds `parallelize-scans` to the DAG;
    // its commutation claims are verified like everyone else's.
    let mut level5_threaded = StackConfig::level5();
    level5_threaded.threads = 4;
    for cfg in [
        StackConfig::level5(),
        StackConfig::level4(),
        StackConfig::compliant(),
        level5_threaded,
    ] {
        let sched = Scheduler::from_registry(&cfg).expect("DAG builds");
        assert!(
            sched.commuting_pairs().len() >= 13,
            "{}: the DAG must leave real freedom (got {} unordered pairs)",
            cfg.name,
            sched.commuting_pairs().len()
        );
        let violations = sched.verify_commutation(&corpus, &schema);
        assert!(
            violations.is_empty(),
            "{}: {} commutation violations:\n{}",
            cfg.name,
            violations.len(),
            violations.join("\n")
        );
    }
}

/// A deliberately mis-declared pair — two passes that visibly do not
/// commute, left unordered in the DAG — is caught by the soundness
/// check; declaring the missing edge silences it.
#[test]
fn mis_declared_commutation_is_caught_by_the_soundness_check() {
    use dblab::ir::expr::{Atom, Expr, Stmt, Sym};
    use dblab::ir::types::Type;
    use dblab::ir::{BinOp, Level, Program};
    use dblab::transform::{schedule::Scheduler, Pass, PassCtx, PassKind, StackConfig};

    fn append_stmt(p: &Program, op: BinOp, lhs: i64, rhs: i64) -> Program {
        let mut q = p.clone();
        let sym = Sym(q.sym_types.len() as u32);
        q.sym_types.push(Type::Int);
        q.body.stmts.push(Stmt {
            sym,
            ty: Type::Int,
            expr: Expr::Bin(op, Atom::Int(lhs), Atom::Int(rhs)),
        });
        q
    }

    macro_rules! rogue_pass {
        ($name:ident, $label:literal, $op:expr, $after:expr) => {
            struct $name;
            impl Pass for $name {
                fn name(&self) -> &'static str {
                    $label
                }
                fn kind(&self) -> PassKind {
                    PassKind::Optimization
                }
                fn source(&self) -> Level {
                    Level::MapList
                }
                fn target(&self) -> Level {
                    Level::MapList
                }
                fn fixpoint_iters(&self) -> usize {
                    0
                }
                fn after(&self) -> &'static [&'static str] {
                    $after
                }
                fn run(&self, p: &Program, _ctx: &PassCtx) -> Program {
                    append_stmt(p, $op, 1, 2)
                }
            }
        };
    }
    rogue_pass!(AppendAdd, "append-add", BinOp::Add, &[]);
    rogue_pass!(AppendMul, "append-mul", BinOp::Mul, &[]);
    // The honest variant: the same rewrite, with its dependency declared.
    rogue_pass!(AppendMulOrdered, "append-mul", BinOp::Mul, &["append-add"]);

    let schema = tpch_schema_with_stats();
    let cfg = StackConfig::level2();
    let corpus = vec![(
        "nation-count".to_string(),
        dblab::frontend::qplan::QueryProgram::new(
            dblab::frontend::qplan::QPlan::scan("nation")
                .agg(vec![], vec![("n", dblab::frontend::qplan::AggFunc::Count)]),
        ),
    )];

    // Mis-declared: both passes appended their statements in swap-dependent
    // order, yet the DAG leaves them unordered.
    let sched = Scheduler::from_passes(vec![Box::new(AppendAdd), Box::new(AppendMul)], &cfg)
        .expect("DAG builds — nothing *declares* the conflict");
    assert!(sched
        .commuting_pairs()
        .contains(&("append-add", "append-mul")));
    let violations = sched.verify_commutation(&corpus, &schema);
    assert_eq!(violations.len(), 1, "soundness check flags the pair");
    assert!(
        violations[0].contains("append-add") && violations[0].contains("do not commute"),
        "{}",
        violations[0]
    );

    // Declaring the edge removes the pair from the commuting set and the
    // soundness check passes.
    let sched = Scheduler::from_passes(vec![Box::new(AppendAdd), Box::new(AppendMulOrdered)], &cfg)
        .expect("DAG builds");
    assert!(sched.commuting_pairs().is_empty());
    assert!(sched.verify_commutation(&corpus, &schema).is_empty());
}

// -------------------------------------------------------------------
// Join equivalence
// -------------------------------------------------------------------

#[test]
fn hash_join_equals_nested_loop() {
    let mut rng = Rng64::seed_from_u64(0xdb1ab007);
    for _ in 0..CASES {
        let pairs = |rng: &mut Rng64| -> Vec<(i32, i32)> {
            let n = rng.gen_range(0..30usize);
            (0..n)
                .map(|_| (rng.gen_range(0..8i32), rng.gen_range(-50..50i32)))
                .collect()
        };
        let left = pairs(&mut rng);
        let right = pairs(&mut rng);
        let schema = Schema::new(vec![
            TableDef::new("l", vec![("lk", ColType::Int), ("lv", ColType::Int)]),
            TableDef::new("r", vec![("rk", ColType::Int), ("rv", ColType::Int)]),
        ]);
        let mut lt = Table::empty(schema.table("l"));
        for (k, v) in &left {
            lt.push_row(vec![Value::Int(*k), Value::Int(*v)]);
        }
        let mut rt = Table::empty(schema.table("r"));
        for (k, v) in &right {
            rt.push_row(vec![Value::Int(*k), Value::Int(*v)]);
        }
        let db = Database {
            schema,
            tables: vec![lt, rt],
            dir: std::env::temp_dir(),
        };

        use dblab::frontend::expr::col;
        use dblab::frontend::qplan::{JoinKind, QPlan};
        let plan = QPlan::scan("l").hash_join(
            QPlan::scan("r"),
            JoinKind::Inner,
            vec![col("lk")],
            vec![col("rk")],
        );
        let got = dblab::engine::execute_plan(&plan, &db);

        let mut want = 0usize;
        let mut want_sum = 0i64;
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    want += 1;
                    want_sum += (*lv as i64) + (*rv as i64);
                }
            }
        }
        assert_eq!(got.rows.len(), want);
        let got_sum: i64 = got.rows.iter().map(|r| r[1].as_i64() + r[3].as_i64()).sum();
        assert_eq!(got_sum, want_sum);
    }
}
