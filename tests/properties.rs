//! Property-based tests (proptest) over the core invariants:
//!
//! * scalar-expression lowering + ANF construction (CSE, constant folding)
//!   preserve evaluation semantics — random expression trees are evaluated
//!   by the Volcano evaluator and by the IR interpreter over the lowered
//!   program, and must agree;
//! * the generic hash structures behave like `std::collections::HashMap`;
//! * ordered string dictionaries preserve `<`, equality and `startsWith`;
//! * the Volcano hash join equals a naïve nested-loop join.

use proptest::prelude::*;
use std::collections::HashMap;
use std::rc::Rc;

use dblab::catalog::{ColType, Schema, TableDef};
use dblab::frontend::expr::{BinOp, Lit, ScalarExpr};
use dblab::ir::{Atom, IrBuilder, Level};
use dblab::runtime::hash::{ChainedMap, ChainedMultiMap, OpenMap};
use dblab::runtime::{Database, StringDict, Table, Value};

// ---------------------------------------------------------------------
// Random scalar expressions
// ---------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (-50i32..50).prop_map(|v| ScalarExpr::Lit(Lit::Int(v))),
        (-50i32..50).prop_map(|v| ScalarExpr::Lit(Lit::Double(v as f64 / 4.0))),
        Just(ScalarExpr::Col("a".into())),
        Just(ScalarExpr::Col("b".into())),
        Just(ScalarExpr::Col("d".into())),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.add(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.sub(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.mul(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| {
                // comparisons wrapped back into arithmetic via CASE
                ScalarExpr::case_when(x.lt(y), ScalarExpr::Lit(Lit::Int(1)),
                                      ScalarExpr::Lit(Lit::Int(0)))
            }),
            inner.clone().prop_map(|x| x.neg()),
        ]
    })
}

fn tiny_db(a: i32, b: i32, d: f64) -> Database {
    let schema = Schema::new(vec![TableDef::new(
        "t",
        vec![("a", ColType::Int), ("b", ColType::Int), ("d", ColType::Double)],
    )]);
    let mut t = Table::empty(schema.table("t"));
    t.push_row(vec![Value::Int(a), Value::Int(b), Value::Double(d)]);
    Database {
        schema,
        tables: vec![t],
        dir: std::env::temp_dir(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lowered-and-interpreted == directly evaluated, for arbitrary
    /// arithmetic over a one-row table. Exercises the builder's constant
    /// folding and hash-consing on every tree.
    #[test]
    fn scalar_lowering_preserves_semantics(e in arb_expr(), a in -20i32..20, b in -20i32..20,
                                           d in -8i32..8) {
        let d = d as f64 / 2.0;
        let db = tiny_db(a, b, d);
        // Reference: Volcano expression evaluator.
        let plan = dblab::frontend::qplan::QPlan::scan("t")
            .project(vec![("out", e.clone())]);
        let oracle = dblab::engine::execute_plan(&plan, &db);
        let want = oracle.rows[0][0].as_f64();

        // Lowered through the pipeline (level-2 config) and interpreted.
        let prog = dblab::frontend::qplan::QueryProgram::new(plan.clone());
        let mut schema = db.schema.clone();
        schema.table_mut("t").stats.row_count = 1;
        let p = dblab::transform::pipeline::lower_program(
            &prog, &schema, &dblab::transform::StackConfig::level2());
        let out = dblab::interp::run(&p, &db);
        let got: f64 = out.trim().parse().expect("one numeric cell");
        prop_assert!((got - want).abs() <= 1e-4_f64.max(want.abs() * 1e-9),
                     "got {got}, want {want}, expr {e:?}");
    }

    /// The ANF builder never changes results when CSE/folding are toggled.
    #[test]
    fn cse_and_folding_are_semantics_preserving(e in arb_expr()) {
        let db = tiny_db(3, -7, 1.5);
        let plan = dblab::frontend::qplan::QPlan::scan("t")
            .project(vec![("out", e)]);
        let prog = dblab::frontend::qplan::QueryProgram::new(plan);
        let mut schema = db.schema.clone();
        schema.table_mut("t").stats.row_count = 1;
        let cfg = dblab::transform::StackConfig::level2();
        let p1 = dblab::transform::pipeline::lower_program(&prog, &schema, &cfg);
        let p2 = dblab::ir::opt::optimize(&p1, 8);
        prop_assert_eq!(dblab::interp::run(&p1, &db), dblab::interp::run(&p2, &db));
        prop_assert!(p2.body.size() <= p1.body.size(), "optimize must not grow programs");
    }

    // -------------------------------------------------------------------
    // Hash structures vs std
    // -------------------------------------------------------------------

    #[test]
    fn chained_map_behaves_like_std(ops in proptest::collection::vec((0i64..64, -100i64..100), 1..200)) {
        let mut ours: ChainedMap<i64, i64> = ChainedMap::with_buckets(2);
        let mut std_map: HashMap<i64, i64> = HashMap::new();
        for (k, v) in &ops {
            prop_assert_eq!(ours.insert(*k, *v), std_map.insert(*k, *v));
        }
        for k in 0..64 {
            prop_assert_eq!(ours.get(&k), std_map.get(&k));
        }
        prop_assert_eq!(ours.len(), std_map.len());
    }

    #[test]
    fn open_map_behaves_like_std(keys in proptest::collection::vec(0i64..512, 1..200)) {
        let mut ours: OpenMap<i64, i64> = OpenMap::with_capacity(512);
        let mut std_map: HashMap<i64, i64> = HashMap::new();
        for k in &keys {
            *ours.get_or_insert_with(*k, || 0) += 1;
            *std_map.entry(*k).or_insert(0) += 1;
        }
        for k in 0..512 {
            prop_assert_eq!(ours.get(&k), std_map.get(&k));
        }
    }

    #[test]
    fn multimap_preserves_insertion_order_per_key(pairs in proptest::collection::vec((0i32..16, 0i32..1000), 0..100)) {
        let mut ours: ChainedMultiMap<i32, i32> = ChainedMultiMap::new();
        let mut reference: HashMap<i32, Vec<i32>> = HashMap::new();
        for (k, v) in &pairs {
            ours.add_binding(*k, *v);
            reference.entry(*k).or_default().push(*v);
        }
        for k in 0..16 {
            let want = reference.get(&k).cloned().unwrap_or_default();
            prop_assert_eq!(ours.get(&k), &want[..]);
        }
    }

    // -------------------------------------------------------------------
    // String dictionaries (paper Table 2 semantics)
    // -------------------------------------------------------------------

    #[test]
    fn ordered_dictionary_is_order_preserving(mut words in proptest::collection::vec("[a-c]{0,5}", 1..40),
                                              probe in "[a-c]{0,3}") {
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let d = StringDict::build(refs.iter().copied(), true);
        // order preservation
        words.sort();
        words.dedup();
        for w in words.windows(2) {
            prop_assert!(d.code(&w[0]) < d.code(&w[1]));
        }
        // startsWith == range membership, for every stored word
        let (s, e) = d.prefix_range(&probe);
        for w in &words {
            let c = d.code(w);
            prop_assert_eq!(w.starts_with(&probe), c >= s && c <= e,
                            "word {} probe {}", w, probe);
        }
    }

    // -------------------------------------------------------------------
    // Join equivalence
    // -------------------------------------------------------------------

    #[test]
    fn hash_join_equals_nested_loop(left in proptest::collection::vec((0i32..8, -50i32..50), 0..30),
                                    right in proptest::collection::vec((0i32..8, -50i32..50), 0..30)) {
        let schema = Schema::new(vec![
            TableDef::new("l", vec![("lk", ColType::Int), ("lv", ColType::Int)]),
            TableDef::new("r", vec![("rk", ColType::Int), ("rv", ColType::Int)]),
        ]);
        let mut lt = Table::empty(schema.table("l"));
        for (k, v) in &left { lt.push_row(vec![Value::Int(*k), Value::Int(*v)]); }
        let mut rt = Table::empty(schema.table("r"));
        for (k, v) in &right { rt.push_row(vec![Value::Int(*k), Value::Int(*v)]); }
        let db = Database { schema, tables: vec![lt, rt], dir: std::env::temp_dir() };

        use dblab::frontend::expr::col;
        use dblab::frontend::qplan::{JoinKind, QPlan};
        let plan = QPlan::scan("l").hash_join(
            QPlan::scan("r"), JoinKind::Inner, vec![col("lk")], vec![col("rk")]);
        let got = dblab::engine::execute_plan(&plan, &db);

        let mut want = 0usize;
        let mut want_sum = 0i64;
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    want += 1;
                    want_sum += (*lv as i64) + (*rv as i64);
                }
            }
        }
        prop_assert_eq!(got.rows.len(), want);
        let got_sum: i64 = got.rows.iter()
            .map(|r| r[1].as_i64() + r[3].as_i64())
            .sum();
        prop_assert_eq!(got_sum, want_sum);
    }
}
