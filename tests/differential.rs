//! The backbone correctness suite (DESIGN.md §6): every TPC-H query,
//! compiled at every stack configuration, must produce the same result as
//! the Volcano oracle — compiled C via gcc, and the IR interpreter at the
//! pipelining stage.

use std::path::PathBuf;

use dblab::engine;
use dblab::tpch;
use dblab::transform::StackConfig;

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_it_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

/// Field-wise comparison with a small numeric tolerance (C prints through
/// `%.4f`, Rust through `{:.4}`; rounding can differ in the last digit).
fn same_results(a: &str, b: &str) -> bool {
    let la: Vec<&str> = a.lines().collect();
    let lb: Vec<&str> = b.lines().collect();
    if la.len() != lb.len() {
        return false;
    }
    for (x, y) in la.iter().zip(&lb) {
        let fx: Vec<&str> = x.split('|').collect();
        let fy: Vec<&str> = y.split('|').collect();
        if fx.len() != fy.len() {
            return false;
        }
        for (u, v) in fx.iter().zip(&fy) {
            if u == v {
                continue;
            }
            match (u.parse::<f64>(), v.parse::<f64>()) {
                (Ok(a), Ok(b)) if (a - b).abs() <= 0.02_f64.max(a.abs() * 1e-6) => {}
                _ => return false,
            }
        }
    }
    true
}

#[test]
fn all_queries_all_configs_match_the_oracle() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    let mut failures = Vec::new();
    for n in 1..=22 {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        for cfg in StackConfig::table3() {
            let name = format!("it_q{n}_l{}_{}", cfg.levels, cfg.name.contains("Compliant"));
            let verdict = dblab::codegen::compile_query(&prog, &schema, &cfg, &out, &name)
                .and_then(|(_, compiled)| dblab::codegen::run(&compiled, &data))
                .map(|r| same_results(&oracle, &r.stdout));
            match verdict {
                Ok(true) => {}
                Ok(false) => failures.push(format!("Q{n} @ {}: result mismatch", cfg.name)),
                Err(e) => failures.push(format!("Q{n} @ {}: {e}", cfg.name)),
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn legobase_baseline_matches_the_oracle() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    for n in [1, 3, 6, 13, 19] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let (_, compiled) =
            dblab::legobase::compile(&prog, &schema, &out, &format!("it_lb_q{n}")).expect("gcc");
        let run = dblab::codegen::run(&compiled, &data).expect("run");
        assert!(same_results(&oracle, &run.stdout), "LegoBase Q{n}");
    }
}

#[test]
fn interpreter_agrees_with_oracle_at_the_pipelining_stage() {
    let (db, _) = setup();
    let schema = db.schema.clone();
    // The interpreter executes the IR right after the front-end lowering —
    // the paper's "each DSL is executable" claim, used here to localise
    // bugs to either the lowering or the later stages.
    let cfg = StackConfig::level2();
    for n in [1, 3, 4, 6, 12, 13, 14, 19, 22] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let p = dblab::transform::pipeline::lower_program(&prog, &schema, &cfg);
        let got = dblab::interp::run(&p, &db);
        assert!(
            same_results(&oracle, &got),
            "Q{n} interpreter mismatch:\noracle:\n{oracle}\ninterp:\n{got}"
        );
    }
}

#[test]
fn qmonad_frontend_matches_qplan_semantics() {
    use dblab::frontend::expr::{col, lit_d, lit_s};
    use dblab::frontend::qmonad::QMonad;
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    // The paper's Figure 4c query, against TPC-H relations.
    let q = QMonad::source("customer")
        .filter(col("c_mktsegment").eq(lit_s("BUILDING")))
        .hash_join(
            QMonad::source("orders"),
            vec![col("c_custkey")],
            vec![col("o_custkey")],
        )
        .filter(col("o_totalprice").gt(lit_d(1000.0)))
        .count();
    let oracle = engine::execute_plan(&q.to_qplan(), &db).to_text();
    for cfg in [StackConfig::level2(), StackConfig::level5()] {
        let cq = dblab::transform::stack::compile_qmonad(&q, &schema, &cfg);
        let src = dblab::codegen::emit(&cq.program, &schema);
        let compiled = dblab::codegen::compile_c(&src, &out, &format!("it_monad_{}", cfg.levels))
            .expect("gcc");
        let run = dblab::codegen::run(&compiled, &data).expect("run");
        assert!(same_results(&oracle, &run.stdout), "qmonad @ {}", cfg.name);
    }
}
