//! The backbone correctness suite (DESIGN.md §7): every TPC-H query,
//! compiled at every stack configuration through the [`Compiler`] facade,
//! must produce the same result as the Volcano oracle — the C/gcc backend
//! here, every registered backend in `tests/backend_conformance.rs`, and
//! the interpreter backend at the pipelining stage.

use std::path::PathBuf;

use dblab::codegen::{backend, same_normalized, Compiler};
use dblab::engine;
use dblab::tpch;
use dblab::transform::StackConfig;

fn setup() -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join("dblab_it_data");
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

#[test]
fn all_queries_all_configs_match_the_oracle() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    let mut failures = Vec::new();
    for n in 1..=22 {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        for cfg in StackConfig::table3() {
            let name = format!("it_q{n}_l{}_{}", cfg.levels, cfg.name.contains("Compliant"));
            let verdict = Compiler::new(&schema)
                .config(&cfg)
                .out_dir(&out)
                .compile_named(&prog, &name)
                .and_then(|art| art.run(&data))
                .map(|r| same_normalized(&oracle, &r.stdout));
            match verdict {
                Ok(true) => {}
                Ok(false) => failures.push(format!("Q{n} @ {}: result mismatch", cfg.name)),
                Err(e) => failures.push(format!("Q{n} @ {}: {e}", cfg.name)),
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn legobase_baseline_matches_the_oracle() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    for n in [1, 3, 6, 13, 19] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let (_, exe) =
            dblab::legobase::compile(&prog, &schema, &out, &format!("it_lb_q{n}")).expect("gcc");
        let run = exe.run(&data).expect("run");
        assert!(same_normalized(&oracle, &run.stdout), "LegoBase Q{n}");
    }
}

#[test]
fn interpreter_agrees_with_oracle_at_the_pipelining_stage() {
    let (db, data) = setup();
    let schema = db.schema.clone();
    // The interpreter backend executes the IR right after the front-end
    // lowering (the two-level configuration keeps the program at MapList) —
    // the paper's "each DSL is executable" claim, used here to localise
    // bugs to either the lowering or the later stages.
    let compiler = Compiler::new(&schema)
        .config(&StackConfig::level2())
        .backend(backend("interp").expect("registered"));
    for n in [1, 3, 4, 6, 12, 13, 14, 19, 22] {
        let prog = tpch::queries::query(n);
        let oracle = engine::execute_program(&prog, &db).to_text();
        let got = compiler
            .compile_named(&prog, &format!("it_interp_q{n}"))
            .and_then(|art| art.run(&data))
            .expect("interp");
        assert!(
            same_normalized(&oracle, &got.stdout),
            "Q{n} interpreter mismatch:\noracle:\n{oracle}\ninterp:\n{}",
            got.stdout
        );
    }
}

#[test]
fn qmonad_frontend_matches_qplan_semantics() {
    use dblab::frontend::expr::{col, lit_d, lit_s};
    use dblab::frontend::qmonad::QMonad;
    let (db, data) = setup();
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_it_gen");
    // The paper's Figure 4c query, against TPC-H relations.
    let q = QMonad::source("customer")
        .filter(col("c_mktsegment").eq(lit_s("BUILDING")))
        .hash_join(
            QMonad::source("orders"),
            vec![col("c_custkey")],
            vec![col("o_custkey")],
        )
        .filter(col("o_totalprice").gt(lit_d(1000.0)))
        .count();
    let oracle = engine::execute_plan(&q.to_qplan(), &db).to_text();
    for cfg in [StackConfig::level2(), StackConfig::level5()] {
        let art = Compiler::new(&schema)
            .config(&cfg)
            .out_dir(&out)
            .compile_qmonad(&q, &format!("it_monad_{}", cfg.levels))
            .expect("gcc");
        let run = art.run(&data).expect("run");
        assert!(
            same_normalized(&oracle, &run.stdout),
            "qmonad @ {}",
            cfg.name
        );
    }
}
