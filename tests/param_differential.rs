//! Parameterized-query differential suite: every TPC-H template, every
//! available backend, at least three distinct literal bindings — all
//! checked against the Volcano oracle evaluating the same bindings.
//!
//! The contract: parameter values never enter the compiled program.
//! One artifact per template serves every binding; the values travel as
//! runtime inputs (argv for the native backends, the interpreter's
//! parameter vector). The lowering-invariant tests at the bottom pin
//! exactly that — the lowered IR is binding-independent and carries
//! `param` slots, not literals.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use dblab::catalog::dates;
use dblab::codegen::{backend, backends, same_normalized, Compiler};
use dblab::engine;
use dblab::frontend::qplan::QueryProgram;
use dblab::runtime::Value;
use dblab::tpch;
use dblab::transform::StackConfig;

fn setup(tag: &str) -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dblab_param_data_{tag}"));
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

type Binding = Vec<(&'static str, Value)>;

/// At least three distinct bindings per template, the first one empty —
/// the defaults must reproduce the plain (literal-baked) query.
fn bindings_for(n: usize) -> Vec<Binding> {
    match n {
        1 => vec![
            vec![],
            vec![("ship_hi", Value::Int(dates::encode(1995, 6, 17)))],
            vec![("ship_hi", Value::Int(dates::encode(1993, 3, 31)))],
        ],
        6 => vec![
            vec![],
            vec![
                ("discount", Value::Double(0.03)),
                ("quantity", Value::Double(30.0)),
            ],
            vec![
                ("date_lo", Value::Int(dates::encode(1993, 1, 1))),
                ("date_hi", Value::Int(dates::encode(1997, 1, 1))),
                ("discount", Value::Double(0.07)),
                ("quantity", Value::Double(50.0)),
            ],
        ],
        14 => vec![
            vec![],
            vec![
                ("date_lo", Value::Int(dates::encode(1994, 1, 1))),
                ("date_hi", Value::Int(dates::encode(1994, 7, 1))),
            ],
            vec![
                ("date_lo", Value::Int(dates::encode(1992, 1, 1))),
                ("date_hi", Value::Int(dates::encode(1998, 12, 31))),
            ],
        ],
        other => panic!("no binding set for template {other}"),
    }
}

fn as_map(b: &Binding) -> HashMap<Arc<str>, Value> {
    b.iter().map(|(k, v)| ((*k).into(), v.clone())).collect()
}

/// The positional vector an executable wants: declaration order,
/// overrides by name, defaults elsewhere.
fn positional(template: &QueryProgram, b: &[(&'static str, Value)]) -> Vec<Value> {
    template
        .params
        .iter()
        .map(|d| {
            b.iter()
                .find(|(k, _)| *k == &*d.name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| engine::eval::lit_value(&d.default))
        })
        .collect()
}

/// Every template x every available backend x >=3 bindings, one compile
/// per (template, backend) — the same artifact must serve every binding
/// with oracle-correct rows.
#[test]
fn every_backend_serves_every_binding_from_one_artifact() {
    let (db, data) = setup("diff");
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_param_gen");
    let mut failures = Vec::new();
    for n in [1usize, 6, 14] {
        let template = tpch::queries::template(n).expect("template");
        let cases = bindings_for(n);
        let oracles: Vec<String> = cases
            .iter()
            .map(|b| engine::execute_program_bound(&template, &db, &as_map(b)).to_text())
            .collect();
        for b in backends() {
            if !b.available() {
                eprintln!("SKIP backend `{}` (requires {})", b.name(), b.requirement());
                continue;
            }
            let art = Compiler::new(&schema)
                .config(&StackConfig::level5())
                .backend(backend(b.name()).expect("registered"))
                .out_dir(&out)
                .compile_named(&template, &format!("pd_q{n}_{}", b.name()))
                .expect("compile template");
            for (i, (case, oracle)) in cases.iter().zip(&oracles).enumerate() {
                let params = positional(&template, case);
                match art.exe.run_bound(&data, &params, None) {
                    Ok(run) if same_normalized(oracle, &run.stdout) => {}
                    Ok(run) => failures.push(format!(
                        "Q{n} [{}] binding {i}: mismatch\noracle:\n{oracle}\ngot:\n{}",
                        b.name(),
                        run.stdout
                    )),
                    Err(e) => failures.push(format!("Q{n} [{}] binding {i}: {e}", b.name())),
                }
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// With default bindings, a template is row-for-row the plain query —
/// on the oracle and on every backend. Q6 is exempt: its discount band
/// is computed at runtime as `0.06 ± 0.01`, which floating point does
/// not evaluate to the literal query's baked `0.05`/`0.07` endpoints
/// (its defaults are instead pinned against the oracle by the binding-0
/// case of the suite above).
#[test]
fn default_bindings_reproduce_the_literal_query() {
    let (db, data) = setup("defaults");
    let schema = db.schema.clone();
    let out = std::env::temp_dir().join("dblab_param_gen");
    for n in [1usize, 14] {
        let template = tpch::queries::template(n).expect("template");
        let plain = engine::execute_program(&tpch::queries::query(n), &db).to_text();
        let templated = engine::execute_program_bound(&template, &db, &HashMap::new()).to_text();
        assert!(
            same_normalized(&plain, &templated),
            "Q{n}: template defaults diverge from the literal query on the oracle"
        );
        for b in backends() {
            if !b.available() {
                continue;
            }
            let art = Compiler::new(&schema)
                .config(&StackConfig::level5())
                .backend(backend(b.name()).expect("registered"))
                .out_dir(&out)
                .compile_named(&template, &format!("pd_def_q{n}_{}", b.name()))
                .expect("compile template");
            let params = positional(&template, &[]);
            let run = art.exe.run_bound(&data, &params, None).expect("run");
            assert!(
                same_normalized(&plain, &run.stdout),
                "Q{n} [{}]: template defaults diverge from the literal query",
                b.name()
            );
        }
    }
}

/// Binding values must never reach the IR: lowering a template yields
/// `param` slots, the lowered program is trivially binding-independent
/// (bindings are not a compile input), and a parameter-free program's
/// emitted source carries no parameter runtime at all — so pre-existing
/// build-cache entries stay byte-valid.
#[test]
fn lowered_templates_carry_param_slots_not_literals() {
    let schema = tpch::schema::tpch_schema();
    let cfg = StackConfig::level5();
    for n in [1usize, 6, 14] {
        let template = tpch::queries::template(n).expect("template");
        let cq = dblab::transform::compile(&template, &schema, &cfg);
        let printed = dblab::ir::printer::print_program(&cq.program);
        assert!(
            printed.contains("param("),
            "Q{n}: lowered template lost its parameter slots:\n{printed}"
        );
        // The parameter prelude is emitted exactly when the program
        // loads parameters.
        // Native backends emit the parameter runtime; the in-process
        // backends (interp, jit) emit printed IR, where the slot shows up
        // as `param(idx)`.
        for b in backends() {
            let src = b.emit(&cq.program, &schema);
            assert!(
                src.contains("dblab_param") || src.contains("param_") || src.contains("param("),
                "Q{n} [{}]: parameterized emission lacks the parameter runtime",
                b.name()
            );
        }
        let plain = dblab::transform::compile(&tpch::queries::query(n), &schema, &cfg);
        for b in backends() {
            let src = b.emit(&plain.program, &schema);
            assert!(
                !src.contains("dblab_param(") && !src.contains("fn param("),
                "Q{n} [{}]: parameter-free emission gained the parameter runtime",
                b.name()
            );
        }
    }
}

/// The template's program hash — the transform-memo and build-cache key
/// component — is a function of the template alone. Two compiles are
/// hash-identical, and the hash differs from the literal query's (they
/// are different programs: slots vs baked constants).
#[test]
fn program_hash_keys_on_the_template_not_the_bindings() {
    let schema = tpch::schema::tpch_schema();
    let cfg = StackConfig::level5();
    for n in [1usize, 6, 14] {
        let template = tpch::queries::template(n).expect("template");
        let a = dblab::transform::compile(&template, &schema, &cfg);
        let b = dblab::transform::compile(&template, &schema, &cfg);
        assert_eq!(
            dblab::ir::hash::program_hash(&a.program),
            dblab::ir::hash::program_hash(&b.program),
            "Q{n}: recompiling the template must be hash-stable"
        );
        let plain = dblab::transform::compile(&tpch::queries::query(n), &schema, &cfg);
        assert_ne!(
            dblab::ir::hash::program_hash(&a.program),
            dblab::ir::hash::program_hash(&plain.program),
            "Q{n}: template and literal query are distinct programs"
        );
    }
}
