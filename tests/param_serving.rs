//! Serving-path lifecycle suite: parameterized prepared queries through
//! the engine and the wire, plus the plan-cache lifecycle fixes.
//!
//! * **Cache transparency**: one prepared template serves any number of
//!   literal bindings from exactly one tier-0 compile;
//! * **Wire paths**: spec-embedded bindings (`tpch:6?discount=0.03`)
//!   and explicit per-execute parameter sections both work, agree with
//!   the oracle, and share one server cache entry; bad bindings get a
//!   typed `malformed` error;
//! * **Prepare latch**: a slow cold prepare of spec A must not block a
//!   prepare of spec B (the old global-lock head-of-line bug), while a
//!   thundering herd on the *same* spec still collapses to one resolve;
//! * **Registry hygiene**: the engine's weak-ref registry actually
//!   shrinks as handles die, and the server's prepared cache evicts
//!   cold entries past `prepared_cap`;
//! * **Artifact naming**: two distinct programs prepared under the same
//!   name get distinct artifact stems (the old collision bug);
//! * **Re-tier on drift**: refreshed schema statistics past the drift
//!   threshold re-enqueue live handles for a second tier-up.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dblab::codegen::{backend, same_normalized};
use dblab::engine::service::{EngineOptions, NativeChoice, QueryEngine, Tier};
use dblab::engine::{self};
use dblab::frontend::expr::col;
use dblab::frontend::qplan::{AggFunc, QPlan, QueryProgram};
use dblab::runtime::Value;
use dblab::tpch;
use dblab_server::{Client, ErrorCode, QueryResolver, Server, ServerOptions};

fn setup(tag: &str) -> (dblab::runtime::Database, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dblab_pserve_data_{tag}"));
    let db = tpch::generate(0.002, &dir);
    db.write_all().expect("write .tbl");
    (db, dir)
}

fn interp_engine_opts(tag: &str) -> EngineOptions {
    EngineOptions {
        gen_dir: std::env::temp_dir().join(format!("dblab_pserve_gen_{tag}")),
        native: NativeChoice::Disabled,
        ..EngineOptions::default()
    }
}

fn q6_oracle(db: &dblab::runtime::Database, discount: f64, quantity: f64) -> String {
    let template = tpch::queries::template(6).expect("template");
    let mut b: HashMap<Arc<str>, Value> = HashMap::new();
    b.insert("discount".into(), Value::Double(discount));
    b.insert("quantity".into(), Value::Double(quantity));
    engine::execute_program_bound(&template, db, &b).to_text()
}

/// One prepare, many bindings: every execution is oracle-correct, the
/// bindings demonstrably take effect (different rows), and the engine
/// reports exactly one tier-0 compile and one registry entry.
#[test]
fn one_prepare_serves_many_bindings_from_one_compile() {
    let (db, data) = setup("transparent");
    let engine =
        QueryEngine::with_options(&db.schema, interp_engine_opts("transparent")).expect("engine");
    let template = tpch::queries::template(6).expect("template");
    let handle = engine
        .prepare_named(&template, "pserve_q6")
        .expect("prepare");

    let cases = [(0.03f64, 30.0f64), (0.06, 24.0), (0.07, 50.0)];
    let mut row_sets = Vec::new();
    for &(disc, qty) in &cases {
        let full: Vec<Value> = template
            .params
            .iter()
            .map(|d| match &*d.name {
                "discount" => Value::Double(disc),
                "quantity" => Value::Double(qty),
                _ => engine::eval::lit_value(&d.default),
            })
            .collect();
        let run = handle.execute_bound(&data, &full, None).expect("execute");
        assert_eq!(run.tier, Tier::Interp);
        let oracle = q6_oracle(&db, disc, qty);
        assert!(
            same_normalized(&oracle, &run.output.stdout),
            "binding ({disc}, {qty}) diverged:\noracle:\n{oracle}\ngot:\n{}",
            run.output.stdout
        );
        row_sets.push(run.output.stdout);
    }
    assert_ne!(row_sets[0], row_sets[2], "bindings must change the result");

    let stats = engine.stats();
    assert_eq!(
        stats.tier0_compiles, 1,
        "three bindings must cost exactly one tier-0 compile"
    );
    assert_eq!(engine.registry_len(), 1, "one registry entry per prepare");

    // Plain execute (no overrides) runs the declared defaults.
    let run = handle.execute(&data).expect("default execute");
    assert!(same_normalized(
        &q6_oracle(&db, 0.06, 24.0),
        &run.output.stdout
    ));
    assert_eq!(engine.stats().tier0_compiles, 1);
}

/// The wire end to end: spec-embedded bindings, explicit per-execute
/// parameter sections, binding errors, and server-side cache sharing.
#[test]
fn wire_bindings_and_param_sections_serve_from_one_cache_entry() {
    let (db, data) = setup("wire");
    let server = Server::start(
        &db.schema,
        &data,
        dblab_server::tpch_resolver(),
        ServerOptions {
            engine: interp_engine_opts("wire"),
            ..ServerOptions::default()
        },
    )
    .expect("start server");
    let mut c = Client::connect(server.addr()).expect("connect");

    // Two spec-embedded bindings of the same template.
    let s1 = c
        .prepare("tpch:6?discount=0.03&quantity=30")
        .expect("prepare");
    let s2 = c
        .prepare("tpch:6?discount=0.07&quantity=50")
        .expect("prepare");
    let r1 = c.execute(s1).expect("execute s1");
    let r2 = c.execute(s2).expect("execute s2");
    assert!(same_normalized(&q6_oracle(&db, 0.03, 30.0), &r1.rows));
    assert!(same_normalized(&q6_oracle(&db, 0.07, 50.0), &r2.rows));

    // A bare template statement + explicit wire params per execute.
    let s3 = c.prepare("tpch:6?").expect("prepare bare template");
    let template = tpch::queries::template(6).expect("template");
    let mut ps: Vec<Value> = template
        .params
        .iter()
        .map(|d| engine::eval::lit_value(&d.default))
        .collect();
    let disc_at = template
        .params
        .iter()
        .position(|d| &*d.name == "discount")
        .unwrap();
    let qty_at = template
        .params
        .iter()
        .position(|d| &*d.name == "quantity")
        .unwrap();
    ps[disc_at] = Value::Double(0.03);
    ps[qty_at] = Value::Double(30.0);
    let r3 = c.execute_params(s3, &ps).expect("execute with params");
    assert!(
        same_normalized(&r1.rows, &r3.rows),
        "wire params and spec bindings must agree"
    );
    // Bare execute of the bare template = declared defaults.
    let r4 = c.execute(s3).expect("execute defaults");
    assert!(same_normalized(&q6_oracle(&db, 0.06, 24.0), &r4.rows));

    // Binding errors are typed, not silent defaults.
    for bad in ["tpch:6?nope=1", "tpch:6?discount=banana", "tpch:6?discount"] {
        let err = c.prepare(bad).expect_err("bad binding must fail");
        assert_eq!(err.code(), Some(ErrorCode::Malformed), "{bad}: {err}");
    }
    // An explicit *empty* param section is a valid spelling of "use the
    // declared defaults".
    let r5 = c.execute_params(s3, &[]).expect("empty param section");
    assert!(same_normalized(&r4.rows, &r5.rows));

    // All statements above share ONE engine compile: the template.
    assert_eq!(
        server.engine().stats().tier0_compiles,
        1,
        "every binding spelling must share the template's single compile"
    );
    let _ = c.close();
    server.shutdown();
}

/// The resolver for the latch tests: spec `slow` takes `delay` to
/// resolve (standing in for an expensive frontend/compile), everything
/// else resolves instantly. Counts resolutions per spec.
fn latch_resolver(delay: Duration, slow_hits: Arc<AtomicUsize>) -> QueryResolver {
    Arc::new(move |spec| match spec {
        "slow" => {
            slow_hits.fetch_add(1, Ordering::AcqRel);
            std::thread::sleep(delay);
            Some(tpch::queries::query(6))
        }
        "fast" => Some(tpch::queries::query(1)),
        _ => None,
    })
}

/// The head-of-line fix: while spec A is cold-preparing (slow), a
/// prepare of spec B completes immediately — and a concurrent herd on
/// spec A still collapses to one resolution.
#[test]
fn cold_prepare_of_one_spec_does_not_block_another() {
    let (db, data) = setup("latch");
    let slow_hits = Arc::new(AtomicUsize::new(0));
    let delay = Duration::from_secs(3);
    let server = Server::start(
        &db.schema,
        &data,
        latch_resolver(delay, Arc::clone(&slow_hits)),
        ServerOptions {
            engine: interp_engine_opts("latch"),
            ..ServerOptions::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let t0 = Instant::now();
    let (slow_elapsed_a, slow_elapsed_b, fast_elapsed) = std::thread::scope(|s| {
        let a = s.spawn(move || {
            let mut c = Client::connect(addr).expect("connect A");
            let t = Instant::now();
            c.prepare("slow").expect("prepare slow");
            t.elapsed()
        });
        let b = s.spawn(move || {
            // Join the herd shortly after A planted the latch.
            std::thread::sleep(Duration::from_millis(300));
            let mut c = Client::connect(addr).expect("connect B");
            let t = Instant::now();
            c.prepare("slow").expect("prepare slow (herd)");
            t.elapsed()
        });
        let f = s.spawn(move || {
            // While `slow` is mid-resolve, `fast` must sail through.
            std::thread::sleep(Duration::from_millis(300));
            let mut c = Client::connect(addr).expect("connect F");
            let t = Instant::now();
            c.prepare("fast").expect("prepare fast");
            t.elapsed()
        });
        (a.join().unwrap(), b.join().unwrap(), f.join().unwrap())
    });
    let total = t0.elapsed();

    assert!(
        fast_elapsed < delay / 2,
        "fast prepare was head-of-line blocked behind the slow one: \
         {fast_elapsed:?} (slow resolve takes {delay:?})"
    );
    assert_eq!(
        slow_hits.load(Ordering::Acquire),
        1,
        "the herd on `slow` must collapse to one resolution"
    );
    assert!(slow_elapsed_a >= delay / 2, "A paid the resolve");
    assert!(
        slow_elapsed_b < delay * 2,
        "B waited on A's latch, not a fresh resolve: {slow_elapsed_b:?}"
    );
    assert!(total < delay * 2, "nothing serialized twice: {total:?}");
    server.shutdown();
}

/// A tiny unique-name program: registry-churn compiles stay cheap.
fn tiny_program() -> QueryProgram {
    QueryProgram::new(QPlan::scan("nation").agg(
        vec![],
        vec![
            ("n", AggFunc::Count),
            ("s", AggFunc::Sum(col("n_nationkey"))),
        ],
    ))
}

/// The weak-ref registry leak fix: preparing and dropping many handles
/// must not grow the registry without bound, and `stats()` prunes it to
/// exactly the live population.
#[test]
fn dead_handles_are_pruned_from_the_registry() {
    let (db, data) = setup("registry");
    let engine =
        QueryEngine::with_options(&db.schema, interp_engine_opts("registry")).expect("engine");
    let prog = tiny_program();

    let mut max_seen = 0;
    for i in 0..40 {
        let handle = engine
            .prepare_named(&prog, &format!("pserve_churn_{i}"))
            .expect("prepare");
        let _ = handle.execute(&data).expect("execute");
        max_seen = max_seen.max(engine.registry_len());
        drop(handle);
    }
    assert!(
        max_seen < 40,
        "registry grew unboundedly under churn (peak {max_seen} entries for 40 dead prepares)"
    );

    // Two live handles; a stats() snapshot prunes the dead weaks away.
    let h1 = engine
        .prepare_named(&prog, "pserve_live_1")
        .expect("prepare");
    let h2 = engine
        .prepare_named(&prog, "pserve_live_2")
        .expect("prepare");
    let stats = engine.stats();
    assert_eq!(
        engine.registry_len(),
        2,
        "stats() must prune the registry to the live population"
    );
    assert_eq!(stats.queries.len(), 2);
    drop((h1, h2));
}

/// The server-wide LRU: past `prepared_cap`, the coldest ready spec is
/// evicted — and an evicted spec re-prepares transparently.
#[test]
fn server_prepared_cache_evicts_past_the_cap() {
    let (db, data) = setup("lru");
    let server = Server::start(
        &db.schema,
        &data,
        dblab_server::tpch_resolver(),
        ServerOptions {
            engine: interp_engine_opts("lru"),
            prepared_cap: 2,
            ..ServerOptions::default()
        },
    )
    .expect("start server");
    let mut c = Client::connect(server.addr()).expect("connect");
    for q in [1usize, 6, 14, 3] {
        let stmt = c.prepare(&format!("tpch:{q}")).expect("prepare");
        let _ = c.execute(stmt).expect("execute");
    }
    let stats = c.stats().expect("stats");
    assert!(
        stats.contains("\"prepared_cached\": 2"),
        "cache must hold exactly `prepared_cap` ready entries: {stats}"
    );
    assert!(
        stats.contains("\"prepared_evicted\": 2"),
        "two of four specs must have been evicted: {stats}"
    );
    // The evicted spec still serves — one fresh compile, same rows.
    let stmt = c.prepare("tpch:1").expect("re-prepare evicted spec");
    let reply = c.execute(stmt).expect("execute");
    let oracle = engine::execute_program(&tpch::queries::query(1), &db).to_text();
    assert!(same_normalized(&oracle, &reply.rows));
    let _ = c.close();
    server.shutdown();
}

/// The artifact-collision fix: two *distinct* programs prepared under
/// the *same* name get distinct artifact stems (and both serve their own
/// correct rows).
#[test]
fn same_name_distinct_programs_get_distinct_artifacts() {
    let (db, data) = setup("stems");
    let engine =
        QueryEngine::with_options(&db.schema, interp_engine_opts("stems")).expect("engine");
    let h1 = engine
        .prepare_named(&tpch::queries::query(6), "collide")
        .expect("prepare q6");
    let h2 = engine
        .prepare_named(&tpch::queries::query(1), "collide")
        .expect("prepare q1");
    assert_ne!(
        h1.artifact_stem(),
        h2.artifact_stem(),
        "same explicit name + different program must not share an artifact stem"
    );
    let o6 = engine::execute_program(&tpch::queries::query(6), &db).to_text();
    let o1 = engine::execute_program(&tpch::queries::query(1), &db).to_text();
    assert!(same_normalized(
        &o6,
        &h1.execute(&data).expect("q6").output.stdout
    ));
    assert!(same_normalized(
        &o1,
        &h2.execute(&data).expect("q1").output.stdout
    ));
}

/// Statistics drift past the threshold re-tiers live handles: the
/// handle swaps a second time and keeps serving oracle-correct rows.
/// Needs a native toolchain; drift *below* the threshold is a no-op
/// either way.
#[test]
fn stats_drift_past_threshold_retiers_live_handles() {
    let (db, data) = setup("drift");
    let engine = QueryEngine::with_options(
        &db.schema,
        EngineOptions {
            gen_dir: std::env::temp_dir().join("dblab_pserve_gen_drift"),
            workers: 2,
            ..EngineOptions::default()
        },
    )
    .expect("engine");

    // Small drift never re-tiers, native or not.
    let mut nudged = db.schema.clone();
    for t in &mut nudged.tables {
        t.stats.row_count += t.stats.row_count / 10; // +10% < 0.5 threshold
    }
    assert_eq!(
        engine.refresh_stats(&nudged),
        0,
        "sub-threshold drift is a no-op"
    );

    if !backend("gcc").expect("registered").available() {
        eprintln!("(skipping the re-tier half: gcc not present)");
        return;
    }
    let prog = tpch::queries::query(6);
    let oracle = engine::execute_program(&prog, &db).to_text();
    let handle = engine
        .prepare_named(&prog, "pserve_drift")
        .expect("prepare");
    assert!(
        handle.wait_for_native(Duration::from_secs(300)),
        "first tier-up must land"
    );
    // `swap_count` also counts the jit rung landing; the native ladder
    // entry is the one the re-tier check below cares about.
    let native_swaps = || handle.stats().tier_stats(Tier::Native).swaps;
    assert_eq!(native_swaps(), 1);

    // 4x the row counts: well past the 0.5 relative-drift threshold.
    let mut drifted = db.schema.clone();
    for t in &mut drifted.tables {
        t.stats.row_count *= 4;
    }
    assert_eq!(
        engine.refresh_stats(&drifted),
        1,
        "one live handle re-enqueued"
    );

    let deadline = Instant::now() + Duration::from_secs(300);
    while native_swaps() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        native_swaps() >= 2,
        "drift must produce a second tier-up swap"
    );
    let run = handle.execute(&data).expect("post-re-tier execute");
    assert_eq!(run.tier, Tier::Native);
    assert!(
        same_normalized(&oracle, &run.output.stdout),
        "re-tiered executable diverged from the oracle"
    );
}
